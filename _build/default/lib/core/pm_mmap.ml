open Simkit

type page = { mutable bytes : Bytes.t option; mutable dirty : bool }

type t = {
  client : Pm_client.t;
  handle : Pm_client.handle;
  page_bytes : int;
  pages : page array;
  region_len : int;
  latency : Stat.t;
}

let map client handle ?(page_bytes = 4096) () =
  if page_bytes <= 0 then invalid_arg "Pm_mmap.map: page size must be positive";
  let region_len = (Pm_client.info handle).Pm_types.length in
  let n = (region_len + page_bytes - 1) / page_bytes in
  Ok
    {
      client;
      handle;
      page_bytes;
      pages = Array.init n (fun _ -> { bytes = None; dirty = false });
      region_len;
      latency = Stat.create ~name:"msync" ();
    }

let length t = t.region_len

let page_extent t idx =
  let off = idx * t.page_bytes in
  (off, min t.page_bytes (t.region_len - off))

(* Fault a page in from the devices. *)
let fault t idx =
  match t.pages.(idx).bytes with
  | Some b -> Ok b
  | None -> (
      let off, len = page_extent t idx in
      match Pm_client.read t.client t.handle ~off ~len with
      | Ok data ->
          let b = Bytes.make t.page_bytes '\000' in
          Bytes.blit data 0 b 0 len;
          t.pages.(idx).bytes <- Some b;
          Ok b
      | Error e -> Error e)

let bounds_ok t ~off ~len = off >= 0 && len >= 0 && off + len <= t.region_len

let load t ~off ~len =
  if not (bounds_ok t ~off ~len) then Error (Pm_types.Bad_request "load out of bounds")
  else begin
    let out = Bytes.create len in
    let rec copy pos =
      if pos >= len then Ok out
      else
        let abs = off + pos in
        let idx = abs / t.page_bytes in
        let in_page = abs mod t.page_bytes in
        let n = min (len - pos) (t.page_bytes - in_page) in
        match fault t idx with
        | Error e -> Error e
        | Ok page ->
            Bytes.blit page in_page out pos n;
            copy (pos + n)
    in
    copy 0
  end

let store t ~off ~data =
  let len = Bytes.length data in
  if not (bounds_ok t ~off ~len) then Error (Pm_types.Bad_request "store out of bounds")
  else begin
    let rec copy pos =
      if pos >= len then Ok ()
      else
        let abs = off + pos in
        let idx = abs / t.page_bytes in
        let in_page = abs mod t.page_bytes in
        let n = min (len - pos) (t.page_bytes - in_page) in
        (* A partial store still needs the rest of the page's durable
           contents, so fault it in before overwriting. *)
        match fault t idx with
        | Error e -> Error e
        | Ok page ->
            Bytes.blit data pos page in_page n;
            t.pages.(idx).dirty <- true;
            copy (pos + n)
    in
    copy 0
  end

let flush_page t idx =
  let p = t.pages.(idx) in
  match p.bytes with
  | Some b when p.dirty -> (
      let off, len = page_extent t idx in
      match Pm_client.write t.client t.handle ~off ~data:(Bytes.sub b 0 len) with
      | Ok () ->
          p.dirty <- false;
          Ok ()
      | Error e -> Error e)
  | _ -> Ok ()

let msync_range t ~off ~len =
  if not (bounds_ok t ~off ~len) then Error (Pm_types.Bad_request "msync out of bounds")
  else if len = 0 then Ok ()
  else begin
    let sim = Sim.current () in
    let started = Sim.now sim in
    let first = off / t.page_bytes in
    let last = (off + len - 1) / t.page_bytes in
    let rec go idx =
      if idx > last then Ok () else
        match flush_page t idx with Ok () -> go (idx + 1) | Error e -> Error e
    in
    let result = go first in
    if result = Ok () then Stat.add_span t.latency (Sim.now sim - started);
    result
  end

let msync t = msync_range t ~off:0 ~len:t.region_len

let dirty_pages t =
  Array.fold_left (fun acc p -> if p.dirty then acc + 1 else acc) 0 t.pages

let refresh t =
  Array.iter
    (fun p ->
      p.bytes <- None;
      p.dirty <- false)
    t.pages

let sync_latency t = t.latency
