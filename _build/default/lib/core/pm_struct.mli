(** Pointer-rich data structures in persistent memory (paper §3.4).

    Conventional storage forces "costly marshalling-and-unmarshalling of
    pointer-rich data"; persistent memory with address translation lets
    richly connected structures be copied between address spaces with
    hardware-assisted pointer fixing.  This module realizes the scheme
    the paper names: pointers inside the region are {e region-relative
    offsets}, so the structure is valid in any address space that maps
    the region — no fixup on store, no fixup on load.

    Two read styles mirror the paper's "bulk write-selective read":
    {!load} pulls the whole structure back in one pass, while
    {!load_path} chases one pointer chain, reading only the nodes it
    visits — the access pattern of an index probe. *)

type node = { label : string; payload : Bytes.t; children : node list }

val leaf : ?payload:Bytes.t -> string -> node

val branch : ?payload:Bytes.t -> string -> node list -> node

val count_nodes : node -> int

type stored = { root_off : int; bytes_used : int; nodes : int }

val store :
  Pm_client.t -> Pm_client.handle -> ?base:int -> node -> (stored, Pm_types.error) result
(** Bulk-write the structure into the region starting at byte offset
    [base] (default 0), children before parents, each node's child
    pointers encoded as region offsets.  One RDMA write per node, all
    durable on return.  Process context only. *)

val load : Pm_client.t -> Pm_client.handle -> root:int -> (node, Pm_types.error) result
(** Bulk read: rebuild the whole structure from the region.  Works from
    any client that has the region open — the offsets need no
    translation. *)

val load_path :
  Pm_client.t -> Pm_client.handle -> root:int -> path:int list ->
  (node option * int, Pm_types.error) result
(** Selective read: follow [path] (child indices) from the root, reading
    only the nodes on the way.  Returns the node reached (without its
    subtree, children empty) and how many node reads it took; [None] if
    the path leaves the structure. *)
