open Simkit

(** Memory-mapped persistent memory (paper §3.4, §5.1).

    The paper notes that PM "supports transactional updating of
    persistent stores, with an access architecture not dissimilar to the
    mmap() and msync() primitives of memory-mapped files" — and that
    direct load/store mapping is the long-term goal.  This module models
    that access style over the RDMA client library: a region is mapped
    into the process as a page cache; loads and stores hit local memory
    at CPU speed; {!msync} makes the dirty pages durable with synchronous
    RDMA writes; a fresh mapping (or {!refresh}) sees the durable
    image. *)

type t

val map : Pm_client.t -> Pm_client.handle -> ?page_bytes:int -> unit -> (t, Pm_types.error) result
(** Map the whole region (faulting pages in lazily on first touch).
    [page_bytes] defaults to 4096.  Process context only. *)

val length : t -> int

val load : t -> off:int -> len:int -> (Bytes.t, Pm_types.error) result
(** Read through the page cache; faults missing pages from the devices. *)

val store : t -> off:int -> data:Bytes.t -> (unit, Pm_types.error) result
(** Write into the page cache; {e not} durable until {!msync}.  Pages
    touched become dirty. *)

val msync : t -> (unit, Pm_types.error) result
(** Flush every dirty page to both mirrors; on return the store is
    durable.  Returns the first device error otherwise. *)

val msync_range : t -> off:int -> len:int -> (unit, Pm_types.error) result
(** Flush only the dirty pages overlapping the byte range. *)

val dirty_pages : t -> int

val refresh : t -> unit
(** Drop the cache: subsequent loads re-fault from the devices (how a
    mapping observes writes made by other clients). *)

val sync_latency : t -> Stat.t
(** Distribution of {!msync} durations. *)
