(* Classic CLR-style B-tree with preemptive splitting on descent for
   insert and the borrow/merge discipline for delete. *)

type 'a node = {
  mutable n : int;
  keys : int array;  (* length 2t-1; [0..n-1] in use *)
  vals : 'a option array;
  mutable children : 'a node array;  (* length 2t when internal; [||] when leaf *)
  mutable leaf : bool;
}

type 'a t = { degree : int; mutable root : 'a node; mutable size : int }

let max_keys t = (2 * t.degree) - 1

(* Children arrays of internal nodes are allocated lazily (on first
   attach) so every slot is initialized with a real node. *)
let new_node t ~leaf =
  {
    n = 0;
    keys = Array.make (max_keys t) 0;
    vals = Array.make (max_keys t) None;
    children = [||];
    leaf;
  }

let alloc_children t node first_child =
  if Array.length node.children = 0 then node.children <- Array.make (2 * t.degree) first_child

let create ?(degree = 16) () =
  if degree < 2 then invalid_arg "Btree.create: degree must be >= 2";
  let root =
    { n = 0; keys = Array.make ((2 * degree) - 1) 0; vals = Array.make ((2 * degree) - 1) None; children = [||]; leaf = true }
  in
  { degree; root; size = 0 }

(* Index of the first key >= k in [node], or [node.n]. *)
let lower_bound node k =
  let lo = ref 0 and hi = ref node.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if node.keys.(mid) < k then lo := mid + 1 else hi := mid
  done;
  !lo

let rec find_in node k =
  let i = lower_bound node k in
  if i < node.n && node.keys.(i) = k then node.vals.(i)
  else if node.leaf then None
  else find_in node.children.(i) k

let find t ~key = find_in t.root key

let mem t ~key = find t ~key <> None

(* Split the full child [child] = parent.children.(i); parent is not full. *)
let split_child t parent i child =
  let td = t.degree in
  let right = new_node t ~leaf:child.leaf in
  right.n <- td - 1;
  Array.blit child.keys td right.keys 0 (td - 1);
  Array.blit child.vals td right.vals 0 (td - 1);
  if not child.leaf then begin
    alloc_children t right child.children.(td);
    Array.blit child.children td right.children 0 td
  end;
  child.n <- td - 1;
  (* Shift the parent's keys/children right to make room. *)
  for j = parent.n - 1 downto i do
    parent.keys.(j + 1) <- parent.keys.(j);
    parent.vals.(j + 1) <- parent.vals.(j)
  done;
  for j = parent.n downto i + 1 do
    parent.children.(j + 1) <- parent.children.(j)
  done;
  parent.keys.(i) <- child.keys.(td - 1);
  parent.vals.(i) <- child.vals.(td - 1);
  child.vals.(td - 1) <- None;
  parent.children.(i + 1) <- right;
  parent.n <- parent.n + 1

let rec insert_nonfull t node k v =
  let i = lower_bound node k in
  if i < node.n && node.keys.(i) = k then begin
    let prev = node.vals.(i) in
    node.vals.(i) <- Some v;
    prev
  end
  else if node.leaf then begin
    for j = node.n - 1 downto i do
      node.keys.(j + 1) <- node.keys.(j);
      node.vals.(j + 1) <- node.vals.(j)
    done;
    node.keys.(i) <- k;
    node.vals.(i) <- Some v;
    node.n <- node.n + 1;
    t.size <- t.size + 1;
    None
  end
  else begin
    let i =
      if node.children.(i).n = max_keys t then begin
        split_child t node i node.children.(i);
        (* The separator moved up; pick the side (or the separator). *)
        if node.keys.(i) = k then -1 else if k > node.keys.(i) then i + 1 else i
      end
      else i
    in
    if i = -1 then begin
      (* k equals the promoted separator: replace in place. *)
      let j = lower_bound node k in
      let prev = node.vals.(j) in
      node.vals.(j) <- Some v;
      prev
    end
    else insert_nonfull t node.children.(i) k v
  end

let insert t ~key v =
  let root = t.root in
  if root.n = max_keys t then begin
    let new_root = new_node t ~leaf:false in
    alloc_children t new_root root;
    new_root.children.(0) <- root;
    t.root <- new_root;
    split_child t new_root 0 root
  end;
  insert_nonfull t t.root key v

(* --- Deletion --- *)

let rec max_entry node =
  if node.leaf then (node.keys.(node.n - 1), node.vals.(node.n - 1))
  else max_entry node.children.(node.n)

let rec min_entry node =
  if node.leaf then (node.keys.(0), node.vals.(0))
  else min_entry node.children.(0)

let remove_from_leaf node i =
  for j = i to node.n - 2 do
    node.keys.(j) <- node.keys.(j + 1);
    node.vals.(j) <- node.vals.(j + 1)
  done;
  node.vals.(node.n - 1) <- None;
  node.n <- node.n - 1

(* Merge children i and i+1 of [node] around separator i. *)
let merge_children t node i =
  let left = node.children.(i) in
  let right = node.children.(i + 1) in
  left.keys.(left.n) <- node.keys.(i);
  left.vals.(left.n) <- node.vals.(i);
  Array.blit right.keys 0 left.keys (left.n + 1) right.n;
  Array.blit right.vals 0 left.vals (left.n + 1) right.n;
  if not left.leaf then Array.blit right.children 0 left.children (left.n + 1) (right.n + 1);
  left.n <- left.n + 1 + right.n;
  for j = i to node.n - 2 do
    node.keys.(j) <- node.keys.(j + 1);
    node.vals.(j) <- node.vals.(j + 1)
  done;
  for j = i + 1 to node.n - 1 do
    node.children.(j) <- node.children.(j + 1)
  done;
  node.vals.(node.n - 1) <- None;
  node.n <- node.n - 1;
  ignore t

(* Ensure child [i] of [node] has at least [degree] keys before we
   descend into it. *)
let fix_child t node i =
  let td = t.degree in
  let child = node.children.(i) in
  if child.n >= td then i
  else begin
    let left_sibling = if i > 0 then Some node.children.(i - 1) else None in
    let right_sibling = if i < node.n then Some node.children.(i + 1) else None in
    match (left_sibling, right_sibling) with
    | Some ls, _ when ls.n >= td ->
        (* Borrow the greatest entry of the left sibling through the
           separator. *)
        for j = child.n - 1 downto 0 do
          child.keys.(j + 1) <- child.keys.(j);
          child.vals.(j + 1) <- child.vals.(j)
        done;
        if not child.leaf then begin
          for j = child.n downto 0 do
            child.children.(j + 1) <- child.children.(j)
          done;
          child.children.(0) <- ls.children.(ls.n)
        end;
        child.keys.(0) <- node.keys.(i - 1);
        child.vals.(0) <- node.vals.(i - 1);
        node.keys.(i - 1) <- ls.keys.(ls.n - 1);
        node.vals.(i - 1) <- ls.vals.(ls.n - 1);
        ls.vals.(ls.n - 1) <- None;
        ls.n <- ls.n - 1;
        child.n <- child.n + 1;
        i
    | _, Some rs when rs.n >= td ->
        (* Borrow the least entry of the right sibling. *)
        child.keys.(child.n) <- node.keys.(i);
        child.vals.(child.n) <- node.vals.(i);
        if not child.leaf then child.children.(child.n + 1) <- rs.children.(0);
        node.keys.(i) <- rs.keys.(0);
        node.vals.(i) <- rs.vals.(0);
        for j = 0 to rs.n - 2 do
          rs.keys.(j) <- rs.keys.(j + 1);
          rs.vals.(j) <- rs.vals.(j + 1)
        done;
        if not rs.leaf then
          for j = 0 to rs.n - 1 do
            rs.children.(j) <- rs.children.(j + 1)
          done;
        rs.vals.(rs.n - 1) <- None;
        rs.n <- rs.n - 1;
        child.n <- child.n + 1;
        i
    | Some _, _ ->
        merge_children t node (i - 1);
        i - 1
    | None, Some _ ->
        merge_children t node i;
        i
    | None, None -> i
  end

let rec delete_from t node k =
  let i = lower_bound node k in
  if i < node.n && node.keys.(i) = k then begin
    if node.leaf then begin
      let prev = node.vals.(i) in
      remove_from_leaf node i;
      prev
    end
    else begin
      let td = t.degree in
      let prev = node.vals.(i) in
      if node.children.(i).n >= td then begin
        (* Replace with the predecessor and delete it below. *)
        let pk, pv = max_entry node.children.(i) in
        node.keys.(i) <- pk;
        node.vals.(i) <- pv;
        ignore (delete_from t node.children.(i) pk)
      end
      else if node.children.(i + 1).n >= td then begin
        let sk, sv = min_entry node.children.(i + 1) in
        node.keys.(i) <- sk;
        node.vals.(i) <- sv;
        ignore (delete_from t node.children.(i + 1) sk)
      end
      else begin
        merge_children t node i;
        ignore (delete_from t node.children.(i) k)
      end;
      prev
    end
  end
  else if node.leaf then None
  else begin
    let i = fix_child t node i in
    (* fix_child may have pulled k into this node (borrow/merge moved
       separators); re-dispatch. *)
    let j = lower_bound node k in
    if j < node.n && node.keys.(j) = k then delete_from t node k
    else begin
      ignore i;
      delete_from t node.children.(j) k
    end
  end

let remove t ~key =
  let result = delete_from t t.root key in
  if result <> None then t.size <- t.size - 1;
  (* Shrink the root when it empties. *)
  if t.root.n = 0 && not t.root.leaf then t.root <- t.root.children.(0);
  result

(* --- Traversals --- *)

let rec iter_node node f =
  if node.leaf then
    for i = 0 to node.n - 1 do
      match node.vals.(i) with Some v -> f node.keys.(i) v | None -> ()
    done
  else begin
    for i = 0 to node.n - 1 do
      iter_node node.children.(i) f;
      match node.vals.(i) with Some v -> f node.keys.(i) v | None -> ()
    done;
    iter_node node.children.(node.n) f
  end

let iter t f = iter_node t.root f

let range t ~lo ~hi =
  let out = ref [] in
  let rec walk node =
    if node.leaf then
      for i = 0 to node.n - 1 do
        let k = node.keys.(i) in
        if k >= lo && k <= hi then
          match node.vals.(i) with Some v -> out := (k, v) :: !out | None -> ()
      done
    else begin
      let first = lower_bound node lo in
      (* Visit children/keys from [first] until past [hi]. *)
      let stop = ref false in
      let i = ref first in
      walk node.children.(first);
      while (not !stop) && !i < node.n do
        let k = node.keys.(!i) in
        if k > hi then stop := true
        else begin
          if k >= lo then (match node.vals.(!i) with Some v -> out := (k, v) :: !out | None -> ());
          walk node.children.(!i + 1);
          incr i
        end
      done
    end
  in
  walk t.root;
  List.rev !out

let min_binding t = if t.size = 0 then None else Some (let k, v = min_entry t.root in (k, Option.get v))

let max_binding t = if t.size = 0 then None else Some (let k, v = max_entry t.root in (k, Option.get v))

let cardinal t = t.size

let rec node_height node = if node.leaf then 1 else 1 + node_height node.children.(0)

let height t = node_height t.root

let clear t =
  t.root <- new_node t ~leaf:true;
  t.size <- 0

let check_invariants t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let counted = ref 0 in
  let rec walk node ~is_root ~depth ~lo ~hi =
    if node.n < 0 || node.n > max_keys t then err "node key count %d out of range" node.n;
    if (not is_root) && node.n < t.degree - 1 then
      err "underfull non-root node (%d keys, min %d)" node.n (t.degree - 1);
    for i = 0 to node.n - 1 do
      incr counted;
      let k = node.keys.(i) in
      if i > 0 && node.keys.(i - 1) >= k then err "keys out of order in node";
      (match lo with Some l when k <= l -> err "key %d violates lower bound" k | _ -> ());
      (match hi with Some h when k >= h -> err "key %d violates upper bound" k | _ -> ());
      if node.vals.(i) = None then err "missing value for key %d" k
    done;
    if node.leaf then [ depth ]
    else begin
      let depths = ref [] in
      for i = 0 to node.n do
        let child_lo = if i = 0 then lo else Some node.keys.(i - 1) in
        let child_hi = if i = node.n then hi else Some node.keys.(i) in
        depths :=
          !depths @ walk node.children.(i) ~is_root:false ~depth:(depth + 1) ~lo:child_lo ~hi:child_hi
      done;
      !depths
    end
  in
  let depths = walk t.root ~is_root:true ~depth:0 ~lo:None ~hi:None in
  (match depths with
  | [] -> ()
  | d :: rest -> if not (List.for_all (fun x -> x = d) rest) then err "leaves at unequal depth");
  if !counted <> t.size then err "cardinality mismatch: counted %d, recorded %d" !counted t.size;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " es)
