open Simkit
open Nsk

type t = { systems : System.t array; wan : Time.span }

let build sim ?(nodes = 2) ?(wan_latency = Time.us 100) config =
  if nodes < 1 then invalid_arg "Cluster.build: need at least one node";
  { systems = Array.init nodes (fun _ -> System.build sim config); wan = wan_latency }

let node_count t = Array.length t.systems

let system t i =
  if i < 0 || i >= Array.length t.systems then invalid_arg "Cluster.system: bad node";
  t.systems.(i)

let wan_latency t = t.wan

let local_session t ~node ~cpu = System.session (system t node) ~cpu

let remote_session t ~from_node ~target ~cpu =
  let home = system t from_node in
  let remote = system t target in
  let client_cpu = Node.cpu (System.node home) cpu in
  Txclient.create ~cpu:client_cpu
    ~tmf:(Tmf.server (System.tmf remote))
    ~dp2s:(System.dp2_servers remote)
    ~routing:(System.routing remote)
    ~wan_latency:(if from_node = target then 0 else t.wan)
    ()

let total_committed t =
  Array.fold_left (fun acc s -> acc + Tmf.committed (System.tmf s)) 0 t.systems
