open Simkit

(** Crash recovery: rebuild database state from the durable trails.

    The redo pass reads every ADP's trail back from its device, replays
    updates of committed transactions, and discards in-flight ones.  How
    it learns the outcomes is the paper's §3.4 point: the disk
    configuration scans the master audit trail; the PM configuration
    reads the transaction-state table straight out of persistent memory
    at RDMA speed — no searching.  MTTR is the simulated duration of the
    whole procedure, and shorter MTTR is "the mantra for both better
    availability and data integrity". *)

type outcome_source = Mat_scan | Pm_txn_table

type report = {
  mttr : Time.span;
  outcome_source : outcome_source;
  trails_scanned : int;
  bytes_scanned : int;
  records_replayed : int;
  committed_txns : int;
  in_doubt_txns : int;
      (** prepared under two-phase commit but undecided at the crash *)
  discarded_updates : int;  (** updates of transactions that never committed *)
  rows_rebuilt : int;
}

val pp_report : Format.formatter -> report -> unit

val run : System.t -> (report, string) result
(** Execute recovery and install the rebuilt tables into the DP2s
    (maintenance path).  Process context only. *)
