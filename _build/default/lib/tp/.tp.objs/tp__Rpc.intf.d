lib/tp/rpc.mli: Cpu Msgsys Nsk Simkit Time
