lib/tp/entity.ml: Bytes List Pm String Txclient
