lib/tp/btree.mli:
