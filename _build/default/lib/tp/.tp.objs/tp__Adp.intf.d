lib/tp/adp.mli: Audit Cpu Log_backend Msgsys Nsk Servernet Simkit Time
