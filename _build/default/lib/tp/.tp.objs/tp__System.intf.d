lib/tp/system.mli: Adp Diskio Dp2 Format Lockmgr Node Nsk Pm Servernet Sim Simkit Time Tmf Txclient
