lib/tp/txclient.ml: Array Audit Bytes Cpu Dp2 Format Hashtbl Int32 Ivar List Msgsys Nsk Option Pm Rng Sim Simkit Stat Time Tmf
