lib/tp/cluster.ml: Array Node Nsk Simkit System Time Tmf Txclient
