lib/tp/txclient.mli: Audit Bytes Cpu Dp2 Nsk Simkit Stat Time Tmf
