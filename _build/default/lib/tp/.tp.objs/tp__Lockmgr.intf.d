lib/tp/lockmgr.mli: Audit Sim Simkit Time
