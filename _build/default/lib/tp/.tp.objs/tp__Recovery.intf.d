lib/tp/recovery.mli: Format Simkit System Time
