lib/tp/dp2.mli: Adp Audit Bytes Cpu Diskio Lockmgr Msgsys Nsk Servernet Simkit Time
