lib/tp/dtx.ml: Cluster Gate List Sim Simkit System Txclient
