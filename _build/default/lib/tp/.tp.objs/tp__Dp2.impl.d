lib/tp/dp2.ml: Adp Audit Btree Bytes Cpu Diskio Format Hashtbl Int64 Ivar List Lockmgr Msgsys Nsk Procpair Rng Rpc Simkit Time
