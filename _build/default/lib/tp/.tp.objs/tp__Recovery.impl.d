lib/tp/recovery.ml: Adp Array Audit Cpu Dp2 Format Hashtbl List Log_backend Node Nsk Pm Sim Simkit System Time
