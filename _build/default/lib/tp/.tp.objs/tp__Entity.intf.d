lib/tp/entity.mli: Txclient
