lib/tp/cluster.mli: Sim Simkit System Time Txclient
