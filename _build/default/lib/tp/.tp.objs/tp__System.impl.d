lib/tp/system.ml: Adp Array Cpu Diskio Dp2 Format Hashtbl List Lockmgr Log_backend Node Nsk Pm Printf Rpc Servernet Sim Simkit Stat Time Tmf Txclient
