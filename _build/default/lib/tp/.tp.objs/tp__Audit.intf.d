lib/tp/audit.mli: Bytes Codec Format Pm
