lib/tp/log_backend.mli: Audit Diskio Pm Pm_client
