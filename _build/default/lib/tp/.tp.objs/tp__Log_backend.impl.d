lib/tp/log_backend.ml: Audit Bytes Codec Diskio List Pm Pm_client Pm_types
