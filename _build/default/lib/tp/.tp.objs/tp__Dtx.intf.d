lib/tp/dtx.mli: Cluster Txclient
