lib/tp/rpc.ml: Msgsys Nsk Sim Simkit Time
