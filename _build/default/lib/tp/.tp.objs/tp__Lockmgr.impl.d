lib/tp/lockmgr.ml: Audit Hashtbl List Sim Simkit Time
