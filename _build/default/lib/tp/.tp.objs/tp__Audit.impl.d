lib/tp/audit.ml: Bytes Codec Crc32 Format Int32 List Pm String
