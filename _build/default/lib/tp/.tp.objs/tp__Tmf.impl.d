lib/tp/tmf.ml: Adp Array Audit Bytes Cpu Dp2 Format Hashtbl Ivar List Mailbox Msgsys Nsk Pm Procpair Rpc Sim Simkit Stat Time
