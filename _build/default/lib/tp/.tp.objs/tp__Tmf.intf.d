lib/tp/tmf.mli: Adp Audit Cpu Dp2 Msgsys Nsk Pm Servernet Simkit Stat Time
