lib/tp/adp.ml: Audit Cpu List Log_backend Mailbox Msgsys Nsk Procpair Simkit Time
