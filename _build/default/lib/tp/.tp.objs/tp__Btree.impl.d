lib/tp/btree.ml: Array List Option Printf String
