(** Distributed transactions across cluster nodes (two-phase commit).

    NonStop TMF's signature capability: one atomic transaction touching
    data on several nodes.  The coordinator runs on one node; every node
    whose data the transaction touches becomes a branch with its own
    local transaction; commit drives the classic protocol — prepare every
    branch (durable PREPARED records), log the decision on the
    coordinator's branch, then propagate it.

    Each phase is one or more synchronous trail forces, which is exactly
    where the paper's persistent memory pays twice over: a distributed
    disk-mode commit stacks several rotational waits end to end, while
    the PM configuration keeps the whole protocol in the
    microsecond-to-millisecond range (EXPERIMENTS.md E10). *)

type t

type error = Txclient.error

val begin_dtx : Cluster.t -> coordinator:int -> cpu:int -> t
(** Start a distributed transaction coordinated from [coordinator]'s CPU
    [cpu].  Branches open lazily as nodes are touched. *)

val insert :
  t -> node:int -> file:int -> key:int -> len:int -> (unit, error) result
(** Insert into [node]'s data tier within this transaction (synchronous;
    opens the node's branch on first touch). *)

val read : t -> node:int -> file:int -> key:int -> ((int * int) option, error) result
(** Locked transactional read on a branch. *)

val branches : t -> int list
(** Nodes this transaction currently touches, ascending. *)

val commit : t -> (unit, error) result
(** Two-phase commit.  Single-branch transactions short-circuit to the
    ordinary one-phase protocol.  On a prepare failure every branch is
    aborted and the first error returned. *)

val abort : t -> (unit, error) result
