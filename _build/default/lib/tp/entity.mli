(** Container-managed entity persistence (paper §2, §3.4).

    Development frameworks of the paper's era (EJB entity beans) let the
    application {e specify} persistence — "this object is durable" — and
    left the implementation to a container.  The paper argues PM "starts
    to take away some of the pain" of such container-managed persistence
    by making the underlying commits cheap.

    This module is that container over the transaction stack: declare a
    schema, then persist and find typed entities; each entity maps to one
    row (its fields serialized into the payload, CRC-protected in the
    audit trail), and every mutation is transactional.  Run it on a PM
    system and entity saves cost milliseconds; on disk audit, tens. *)

type field_type = F_int | F_string

type schema

val schema : name:string -> file:int -> fields:(string * field_type) list -> schema
(** Entities of this schema live in keyed file [file]; fields are
    serialized in declaration order. *)

val schema_name : schema -> string

type value = V_int of int | V_string of string

type entity = (string * value) list
(** Field name to value, in schema order. *)

type error = E_failed of string | E_type_mismatch of string | E_not_found

val error_to_string : error -> string

type t
(** A container bound to one session. *)

val create : Txclient.t -> t

val with_txn : t -> (Txclient.txn -> ('a, error) result) -> ('a, error) result
(** Begin a transaction, run the body, commit on [Ok] and abort on
    [Error] — the container's unit of work. *)

val persist : t -> Txclient.txn -> schema -> id:int -> entity -> (unit, error) result
(** Save (insert or overwrite) the entity under [id] within the
    transaction.  Field names and types must match the schema. *)

val find : t -> schema -> id:int -> (entity option, error) result
(** Load an entity (reads the row payload and deserializes).  Requires
    the system to store payloads ([Dp2.config.store_payloads]). *)

val exists : t -> schema -> id:int -> (bool, error) result

val find_range : t -> schema -> lo:int -> hi:int -> ((int * entity) list, error) result
(** All entities with [lo <= id <= hi], using the keyed files' B-tree
    scans plus per-row payload loads. *)
