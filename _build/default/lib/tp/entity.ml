type field_type = F_int | F_string

type schema = { s_name : string; file : int; fields : (string * field_type) list }

let schema ~name ~file ~fields =
  if fields = [] then invalid_arg "Entity.schema: need at least one field";
  { s_name = name; file; fields }

let schema_name s = s.s_name

type value = V_int of int | V_string of string

type entity = (string * value) list

type error = E_failed of string | E_type_mismatch of string | E_not_found

let error_to_string = function
  | E_failed msg -> msg
  | E_type_mismatch f -> "type mismatch on field " ^ f
  | E_not_found -> "entity not found"

type t = { session : Txclient.t }

let create session = { session }

let entity_magic = 0xE7

(* Serialize fields in schema order; validate names and types. *)
let encode schema entity =
  let enc = Pm.Codec.Enc.create () in
  Pm.Codec.Enc.u8 enc entity_magic;
  Pm.Codec.Enc.str enc schema.s_name;
  let rec encode_fields declared given =
    match (declared, given) with
    | [], [] -> Ok ()
    | (fname, ftype) :: drest, (gname, gval) :: grest ->
        if not (String.equal fname gname) then Error (E_type_mismatch fname)
        else (
          match (ftype, gval) with
          | F_int, V_int v ->
              Pm.Codec.Enc.u64 enc v;
              encode_fields drest grest
          | F_string, V_string v ->
              Pm.Codec.Enc.str enc v;
              encode_fields drest grest
          | F_int, V_string _ | F_string, V_int _ -> Error (E_type_mismatch fname))
    | _, _ -> Error (E_type_mismatch "field count")
  in
  match encode_fields schema.fields entity with
  | Ok () -> Ok (Pm.Codec.Enc.to_bytes enc)
  | Error e -> Error e

let decode schema bytes =
  try
    let dec = Pm.Codec.Dec.of_bytes bytes in
    if Pm.Codec.Dec.u8 dec <> entity_magic then Error (E_failed "not an entity row")
    else if not (String.equal (Pm.Codec.Dec.str dec) schema.s_name) then
      Error (E_failed "row belongs to another schema")
    else
      Ok
        (List.map
           (fun (fname, ftype) ->
             match ftype with
             | F_int -> (fname, V_int (Pm.Codec.Dec.u64 dec))
             | F_string -> (fname, V_string (Pm.Codec.Dec.str dec)))
           schema.fields)
  with Pm.Codec.Dec.Truncated -> Error (E_failed "truncated entity row")

let with_txn t body =
  match Txclient.begin_txn t.session with
  | Error e -> Error (E_failed (Txclient.error_to_string e))
  | Ok txn -> (
      match body txn with
      | Ok v -> (
          match Txclient.commit t.session txn with
          | Ok () -> Ok v
          | Error e -> Error (E_failed ("commit: " ^ Txclient.error_to_string e)))
      | Error e ->
          let (_ : (unit, Txclient.error) result) = Txclient.abort t.session txn in
          Error e)

let persist t txn schema ~id entity =
  match encode schema entity with
  | Error e -> Error e
  | Ok payload -> (
      match
        Txclient.insert t.session txn ~payload ~file:schema.file ~key:id
          ~len:(Bytes.length payload) ()
      with
      | Ok () -> Ok ()
      | Error e -> Error (E_failed (Txclient.error_to_string e)))

let find t schema ~id =
  match Txclient.lookup_payload t.session ~file:schema.file ~key:id with
  | Error e -> Error (E_failed (Txclient.error_to_string e))
  | Ok None -> Ok None
  | Ok (Some payload) -> ( match decode schema payload with Ok e -> Ok (Some e) | Error e -> Error e)

let exists t schema ~id =
  match Txclient.lookup t.session ~file:schema.file ~key:id with
  | Ok (Some _) -> Ok true
  | Ok None -> Ok false
  | Error e -> Error (E_failed (Txclient.error_to_string e))

let find_range t schema ~lo ~hi =
  match Txclient.scan t.session ~file:schema.file ~lo ~hi () with
  | Error e -> Error (E_failed (Txclient.error_to_string e))
  | Ok rows ->
      let rec load acc = function
        | [] -> Ok (List.rev acc)
        | (id, _, _) :: rest -> (
            match find t schema ~id with
            | Ok (Some e) -> load ((id, e) :: acc) rest
            | Ok None -> load acc rest
            | Error e -> Error e)
      in
      load [] rows
