(** In-memory B-trees: the keyed-file indices the database writers
    maintain (paper §3.4 lists "database indices" first among the
    structures worth persisting at fine grain).

    A classic order-[degree] B-tree with full insert/find/delete/range
    support.  Mutable, single-threaded — exactly one DP2 process owns
    each tree, the NonStop discipline. *)

type 'a t

val create : ?degree:int -> unit -> 'a t
(** [degree] is the minimum degree [t] (every node except the root holds
    between [t-1] and [2t-1] keys); default 16. *)

val insert : 'a t -> key:int -> 'a -> 'a option
(** Insert or replace; returns the previous binding if any. *)

val find : 'a t -> key:int -> 'a option

val mem : 'a t -> key:int -> bool

val remove : 'a t -> key:int -> 'a option
(** Delete; returns the removed binding if present. *)

val range : 'a t -> lo:int -> hi:int -> (int * 'a) list
(** Bindings with [lo <= key <= hi], ascending. *)

val min_binding : 'a t -> (int * 'a) option

val max_binding : 'a t -> (int * 'a) option

val cardinal : 'a t -> int

val height : 'a t -> int

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Ascending key order. *)

val clear : 'a t -> unit

val check_invariants : 'a t -> (unit, string) result
(** Structural validation for tests: key ordering, node occupancy,
    uniform leaf depth, cardinality bookkeeping. *)
