open Pm

type txn_id = int

type asn = int

type record =
  | Begin of { txn : txn_id }
  | Update of {
      txn : txn_id;
      file : int;
      partition : int;
      key : int;
      payload_len : int;
      payload_crc : int;
      before_len : int;
    }
  | Commit of { txn : txn_id }
  | Abort of { txn : txn_id }
  | Prepared of { txn : txn_id }
  | Control_point of { active : txn_id list }

let txn_of = function
  | Begin { txn } | Commit { txn } | Abort { txn } | Prepared { txn } -> Some txn
  | Update u -> Some u.txn
  | Control_point _ -> None

let magic = 0xAD17

let tag_of = function
  | Begin _ -> 1
  | Update _ -> 2
  | Commit _ -> 3
  | Abort _ -> 4
  | Control_point _ -> 5
  | Prepared _ -> 6

let encode_body record =
  let enc = Codec.Enc.create () in
  Codec.Enc.u8 enc (tag_of record);
  (match record with
  | Begin { txn } | Commit { txn } | Abort { txn } | Prepared { txn } -> Codec.Enc.u64 enc txn
  | Update { txn; file; partition; key; payload_len; payload_crc; before_len } ->
      Codec.Enc.u64 enc txn;
      Codec.Enc.u16 enc file;
      Codec.Enc.u16 enc partition;
      Codec.Enc.u64 enc key;
      Codec.Enc.u32 enc payload_len;
      Codec.Enc.u32 enc payload_crc;
      Codec.Enc.u32 enc before_len
  | Control_point { active } ->
      Codec.Enc.u32 enc (List.length active);
      List.iter (Codec.Enc.u64 enc) active);
  Codec.Enc.to_bytes enc

let payload_padding = function
  | Update { payload_len; before_len; _ } -> payload_len + before_len
  | Begin _ | Commit _ | Abort _ | Prepared _ | Control_point _ -> 0

let frame_overhead = 2 (* magic *) + 2 (* body length *) + 4 (* crc *)

let wire_size record =
  frame_overhead + Bytes.length (encode_body record) + payload_padding record

let encode enc record =
  let body = encode_body record in
  Codec.Enc.u16 enc magic;
  Codec.Enc.u16 enc (Bytes.length body);
  Codec.Enc.raw enc body;
  Codec.Enc.u32 enc (Int32.to_int (Crc32.bytes body) land 0xFFFFFFFF);
  (* Payload bytes travel with the record; the simulator carries their
     length as zero padding. *)
  Codec.Enc.pad enc (payload_padding record)

let encode_to_bytes record =
  let enc = Codec.Enc.create () in
  encode enc record;
  Codec.Enc.to_bytes enc

let decode buf ~pos =
  try
    let dec = Codec.Dec.of_sub buf ~pos ~len:(Bytes.length buf - pos) in
    let m = Codec.Dec.u16 dec in
    if m <> magic then None
    else
      let body_len = Codec.Dec.u16 dec in
      if body_len = 0 then None
      else begin
        let body_pos = Codec.Dec.pos dec in
        if body_pos + body_len + 4 > Bytes.length buf then None
        else begin
          let body = Bytes.sub buf body_pos body_len in
          let bdec = Codec.Dec.of_bytes body in
          let crc_pos = body_pos + body_len in
          let cdec = Codec.Dec.of_sub buf ~pos:crc_pos ~len:4 in
          let crc = Codec.Dec.u32 cdec in
          if Int32.to_int (Crc32.bytes body) land 0xFFFFFFFF <> crc then None
          else
            let record =
              match Codec.Dec.u8 bdec with
              | 1 -> Some (Begin { txn = Codec.Dec.u64 bdec })
              | 2 ->
                  let txn = Codec.Dec.u64 bdec in
                  let file = Codec.Dec.u16 bdec in
                  let partition = Codec.Dec.u16 bdec in
                  let key = Codec.Dec.u64 bdec in
                  let payload_len = Codec.Dec.u32 bdec in
                  let payload_crc = Codec.Dec.u32 bdec in
                  let before_len = Codec.Dec.u32 bdec in
                  Some (Update { txn; file; partition; key; payload_len; payload_crc; before_len })
              | 3 -> Some (Commit { txn = Codec.Dec.u64 bdec })
              | 4 -> Some (Abort { txn = Codec.Dec.u64 bdec })
              | 5 ->
                  let n = Codec.Dec.u32 bdec in
                  Some (Control_point { active = List.init n (fun _ -> Codec.Dec.u64 bdec) })
              | 6 -> Some (Prepared { txn = Codec.Dec.u64 bdec })
              | _ -> None
            in
            match record with
            | None -> None
            | Some r ->
                let next = crc_pos + 4 + payload_padding r in
                if next > Bytes.length buf then None else Some (r, next)
        end
      end
  with Codec.Dec.Truncated -> None

let pp ppf = function
  | Begin { txn } -> Format.fprintf ppf "BEGIN txn=%d" txn
  | Update { txn; file; partition; key; payload_len; _ } ->
      Format.fprintf ppf "UPDATE txn=%d file=%d part=%d key=%d len=%d" txn file partition key
        payload_len
  | Commit { txn } -> Format.fprintf ppf "COMMIT txn=%d" txn
  | Abort { txn } -> Format.fprintf ppf "ABORT txn=%d" txn
  | Prepared { txn } -> Format.fprintf ppf "PREPARED txn=%d" txn
  | Control_point { active } ->
      Format.fprintf ppf "CONTROL-POINT active=[%s]"
        (String.concat ";" (List.map string_of_int active))
