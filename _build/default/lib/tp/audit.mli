open Pm

(** Audit-trail records: the database's redo/undo log (paper §1.2).

    Every state change a database writer makes is described by an audit
    record; the relevant records must be durable before a transaction may
    commit.  Records carry a CRC so recovery can detect torn writes.

    Payloads are represented by length and checksum rather than the bytes
    themselves — the simulator moves sizes, not contents — but records
    themselves serialize to exactly the number of bytes a real trail would
    carry, so log-volume and PM-region traffic is faithful. *)

type txn_id = int

type asn = int
(** Audit sequence number: position of a record in one ADP's trail. *)

type record =
  | Begin of { txn : txn_id }
  | Update of {
      txn : txn_id;
      file : int;
      partition : int;
      key : int;
      payload_len : int;
      payload_crc : int;
      before_len : int;  (** 0 for an insert; undo information otherwise *)
    }
  | Commit of { txn : txn_id }
  | Abort of { txn : txn_id }
  | Prepared of { txn : txn_id }
      (** two-phase commit: the transaction's updates are durable and its
          locks held, awaiting the coordinator's decision *)
  | Control_point of { active : txn_id list }
      (** periodic recovery horizon: redo scans start at the last one *)

val txn_of : record -> txn_id option
(** [None] for control points. *)

val wire_size : record -> int
(** Bytes this record occupies in a trail, payload included. *)

val encode : Codec.Enc.t -> record -> unit
(** Append the framed record (header, body, CRC, payload padding). *)

val encode_to_bytes : record -> Bytes.t

val decode : Bytes.t -> pos:int -> (record * int) option
(** [decode buf ~pos] parses the framed record at [pos], returning it and
    the offset just past it; [None] if the bytes there are not a valid
    record (bad magic, bad CRC, truncated). *)

val pp : Format.formatter -> record -> unit
