lib/servernet/avt.mli: Format
