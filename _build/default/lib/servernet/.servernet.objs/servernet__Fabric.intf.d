lib/servernet/fabric.mli: Avt Bytes Format Sim Simkit Time
