lib/servernet/avt.ml: Format List
