lib/servernet/fabric.ml: Array Avt Bytes Format List Rng Sim Simkit Time
