(** Lightweight event tracing for debugging simulations.

    Disabled by default; when enabled, records [(time, tag, message)]
    triples in memory.  Costs nothing when disabled beyond a flag check,
    as long as callers build messages lazily with {!eventf}. *)

type t

val create : ?capacity:int -> unit -> t
(** Ring buffer holding the most recent [capacity] entries
    (default 65536). *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val event : t -> time:Time.t -> tag:string -> string -> unit

val eventf : t -> time:Time.t -> tag:string -> (unit -> string) -> unit
(** The thunk is only forced when tracing is enabled. *)

val entries : t -> (Time.t * string * string) list
(** Oldest first. *)

val dump : Format.formatter -> t -> unit
