(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in a simulation draws from one [Rng.t]
    seeded at construction, so a run is reproducible from its seed. *)

type t

val create : int64 -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t]'s stream, for
    giving subsystems their own streams without coupling draw orders. *)

val int64 : t -> int64
(** Next raw 64-bit draw. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean. *)

val uniform_span : t -> Time.span -> Time.span
(** [uniform_span t s] is uniform in [\[0, s)] nanoseconds. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
