(** Simulated time.

    Timestamps and spans are integer nanoseconds.  A 63-bit OCaml [int]
    holds about 292 simulated years of nanoseconds, far beyond any run we
    perform, and integer arithmetic keeps every run bit-for-bit
    deterministic. *)

type t = int
(** A point in simulated time, in nanoseconds since the start of the run. *)

type span = int
(** A duration in nanoseconds.  Spans and timestamps share representation
    so that [t + span] is ordinary integer addition. *)

val zero : t

val ns : int -> span
val us : int -> span
val ms : int -> span
val sec : int -> span

val us_f : float -> span
(** [us_f x] is [x] microseconds rounded to the nearest nanosecond. *)

val ms_f : float -> span
val sec_f : float -> span

val to_us : t -> float
val to_ms : t -> float
val to_sec : t -> float

val pp : Format.formatter -> t -> unit
(** Pretty-print with an auto-selected unit, e.g. ["12.5us"], ["3.2ms"]. *)

val to_string : t -> string
