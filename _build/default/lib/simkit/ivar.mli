(** Write-once synchronization variables (futures).

    The standard way to wait for an asynchronous completion: an I/O
    request carries an ivar, the device fills it, the requester reads it. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** Raises [Invalid_argument] if already filled. *)

val try_fill : 'a t -> 'a -> bool
(** Like {!fill} but returns [false] instead of raising. *)

val is_filled : 'a t -> bool

val peek : 'a t -> 'a option

val read : 'a t -> 'a
(** Block the calling process until the ivar is filled.  Must run in
    process context. *)

val read_timeout : 'a t -> Time.span -> 'a option
(** Like {!read} but gives up after the given span, returning [None]. *)
