type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let nonneg = Int64.to_int (int64 t) land max_int in
  nonneg mod bound

let unit_float t =
  (* 53 high bits give a uniform double in [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

let float t bound = unit_float t *. bound

let bool t p = unit_float t < p

let exponential t ~mean =
  let u = unit_float t in
  -.mean *. log1p (-.u)

let uniform_span t s = if s <= 0 then 0 else int t s

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
