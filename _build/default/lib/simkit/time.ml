type t = int
type span = int

let zero = 0

let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let sec x = x * 1_000_000_000

let round_to_int f = int_of_float (Float.round f)

let us_f x = round_to_int (x *. 1e3)
let ms_f x = round_to_int (x *. 1e6)
let sec_f x = round_to_int (x *. 1e9)

let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_sec t = float_of_int t /. 1e9

let pp ppf t =
  let a = abs t in
  if a < 1_000 then Format.fprintf ppf "%dns" t
  else if a < 1_000_000 then Format.fprintf ppf "%.2fus" (to_us t)
  else if a < 1_000_000_000 then Format.fprintf ppf "%.2fms" (to_ms t)
  else Format.fprintf ppf "%.3fs" (to_sec t)

let to_string t = Format.asprintf "%a" pp t
