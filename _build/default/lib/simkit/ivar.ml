type 'a t = { mutable value : 'a option; mutable waiters : (unit -> unit) list }

let create () = { value = None; waiters = [] }

let wake_all t =
  let ws = t.waiters in
  t.waiters <- [];
  List.iter (fun w -> w ()) ws

let try_fill t v =
  match t.value with
  | Some _ -> false
  | None ->
      t.value <- Some v;
      wake_all t;
      true

let fill t v = if not (try_fill t v) then invalid_arg "Ivar.fill: already filled"

let is_filled t = Option.is_some t.value

let peek t = t.value

let rec read t =
  match t.value with
  | Some v -> v
  | None ->
      Sim.suspend (fun waker -> t.waiters <- waker :: t.waiters);
      read t

let read_timeout t span =
  let sim = Sim.current () in
  let deadline = Sim.now sim + span in
  let rec loop () =
    match t.value with
    | Some v -> Some v
    | None ->
        if Sim.now sim >= deadline then None
        else begin
          Sim.suspend (fun waker ->
              t.waiters <- waker :: t.waiters;
              Sim.at_time sim ~time:deadline waker);
          loop ()
        end
  in
  loop ()
