(** Countdown latches for fan-out/fan-in.

    A gate opens once a fixed number of {!arrive} calls have happened —
    e.g. a transaction driver issues N asynchronous inserts and waits on a
    gate of size N. *)

type t

val create : int -> t
(** [create n] needs [n] arrivals to open.  [create 0] is already open. *)

val arrive : t -> unit
(** Raises [Invalid_argument] on arrival at an already-open gate. *)

val is_open : t -> bool

val await : t -> unit
(** Block the calling process until the gate opens. *)

val remaining : t -> int
