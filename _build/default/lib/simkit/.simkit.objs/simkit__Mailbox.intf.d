lib/simkit/mailbox.mli: Time
