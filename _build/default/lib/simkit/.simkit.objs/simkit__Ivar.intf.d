lib/simkit/ivar.mli: Time
