lib/simkit/gate.ml: Ivar
