lib/simkit/heap.mli:
