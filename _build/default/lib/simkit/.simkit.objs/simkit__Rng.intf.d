lib/simkit/rng.mli: Time
