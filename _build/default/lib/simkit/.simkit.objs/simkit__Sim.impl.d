lib/simkit/sim.ml: Effect Hashtbl Heap List Rng Time
