lib/simkit/sim.mli: Rng Time
