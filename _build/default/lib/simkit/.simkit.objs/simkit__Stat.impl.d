lib/simkit/stat.ml: Array Float Format Time
