lib/simkit/trace.mli: Format Time
