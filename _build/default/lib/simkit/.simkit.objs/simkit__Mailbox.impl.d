lib/simkit/mailbox.ml: List Queue Sim
