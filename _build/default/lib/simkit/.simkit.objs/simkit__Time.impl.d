lib/simkit/time.ml: Float Format
