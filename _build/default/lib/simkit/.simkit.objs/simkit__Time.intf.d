lib/simkit/time.mli: Format
