lib/simkit/ivar.ml: List Option Sim
