lib/simkit/stat.mli: Format Time
