lib/simkit/trace.ml: Array Format List Time
