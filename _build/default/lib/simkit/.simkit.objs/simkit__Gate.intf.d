lib/simkit/gate.mli:
