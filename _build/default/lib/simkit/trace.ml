type entry = { time : Time.t; tag : string; msg : string }

type t = {
  mutable on : bool;
  capacity : int;
  buf : entry option array;
  mutable next : int;
  mutable total : int;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { on = false; capacity; buf = Array.make capacity None; next = 0; total = 0 }

let enable t = t.on <- true
let disable t = t.on <- false
let enabled t = t.on

let event t ~time ~tag msg =
  if t.on then begin
    t.buf.(t.next) <- Some { time; tag; msg };
    t.next <- (t.next + 1) mod t.capacity;
    t.total <- t.total + 1
  end

let eventf t ~time ~tag thunk = if t.on then event t ~time ~tag (thunk ())

let entries t =
  let n = min t.total t.capacity in
  let start = if t.total <= t.capacity then 0 else t.next in
  let out = ref [] in
  for i = n - 1 downto 0 do
    match t.buf.((start + i) mod t.capacity) with
    | Some e -> out := (e.time, e.tag, e.msg) :: !out
    | None -> ()
  done;
  !out

let dump ppf t =
  let pp_entry (time, tag, msg) = Format.fprintf ppf "[%a] %-12s %s@." Time.pp time tag msg in
  List.iter pp_entry (entries t)
