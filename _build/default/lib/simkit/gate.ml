type t = { mutable remaining : int; door : unit Ivar.t }

let create n =
  if n < 0 then invalid_arg "Gate.create: negative count";
  let t = { remaining = n; door = Ivar.create () } in
  if n = 0 then Ivar.fill t.door ();
  t

let arrive t =
  if t.remaining <= 0 then invalid_arg "Gate.arrive: gate already open";
  t.remaining <- t.remaining - 1;
  if t.remaining = 0 then Ivar.fill t.door ()

let is_open t = Ivar.is_filled t.door

let await t = Ivar.read t.door

let remaining t = t.remaining
