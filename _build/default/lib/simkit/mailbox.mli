(** Unbounded blocking mailboxes between simulated processes.

    Sends never block; receives block the calling process until a message
    is available.  Delivery order is FIFO. *)

type 'a t

val create : ?name:string -> unit -> 'a t

val name : 'a t -> string

val send : 'a t -> 'a -> unit

val length : 'a t -> int

val is_empty : 'a t -> bool

val recv : 'a t -> 'a
(** Block until a message arrives.  Must run in process context. *)

val recv_timeout : 'a t -> Time.span -> 'a option
(** Like {!recv} but returns [None] after the given span. *)

val try_recv : 'a t -> 'a option
(** Non-blocking receive. *)
