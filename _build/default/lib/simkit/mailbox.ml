type 'a t = { mb_name : string; q : 'a Queue.t; mutable waiters : (unit -> unit) list }

let create ?(name = "") () = { mb_name = name; q = Queue.create (); waiters = [] }

let name t = t.mb_name

let wake_all t =
  let ws = t.waiters in
  t.waiters <- [];
  List.iter (fun w -> w ()) ws

let send t v =
  Queue.push v t.q;
  wake_all t

let length t = Queue.length t.q

let is_empty t = Queue.is_empty t.q

let try_recv t = Queue.take_opt t.q

let rec recv t =
  match Queue.take_opt t.q with
  | Some v -> v
  | None ->
      Sim.suspend (fun waker -> t.waiters <- waker :: t.waiters);
      recv t

let recv_timeout t span =
  let sim = Sim.current () in
  let deadline = Sim.now sim + span in
  let rec loop () =
    match Queue.take_opt t.q with
    | Some v -> Some v
    | None ->
        if Sim.now sim >= deadline then None
        else begin
          Sim.suspend (fun waker ->
              t.waiters <- waker :: t.waiters;
              Sim.at_time sim ~time:deadline waker);
          loop ()
        end
  in
  loop ()
