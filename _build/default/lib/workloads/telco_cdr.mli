open Simkit

(** Telco call-data-record ingest (paper §1: an ODS for a telecommunication
    company sustains tens of thousands of CDR inserts per second while
    feeding billing, marketing and fraud detection).

    Switch front-ends insert small CDRs in tiny response-time-critical
    transactions — the worst case for a disk-based commit path, since
    there is almost nothing to boxcar.  Concurrent reader sessions run
    fraud-style lookups against recently inserted records to show the
    store serving queries while ingesting. *)

type arrival =
  | Closed  (** each switch issues the next transaction after the last commit *)
  | Open_poisson of float
      (** offered load in CDRs/second across all switches; transactions
          arrive whether or not earlier ones finished, so queueing shows
          up in the response-time tail *)

type params = {
  switches : int;  (** concurrent ingest streams *)
  cdrs_per_switch : int;
  cdr_bytes : int;  (** paper-era CDRs are a few hundred bytes *)
  cdrs_per_txn : int;  (** small: 1-4 *)
  fraud_readers : int;  (** concurrent lookup sessions *)
  arrival : arrival;
}

val default_params : params
(** 4 switches x 1000 CDRs of 256 bytes, 2 per transaction, 1 reader. *)

type result = {
  elapsed : Time.span;
  cdrs_inserted : int;
  cdrs_per_sec : float;
  txn_response : Stat.summary;
  lookups : int;
  lookup_hits : int;
}

val run : Tp.System.t -> params -> result
(** Process context only. *)
