open Simkit
open Nsk

type params = {
  streams : int;
  trades_per_stream : int;
  symbols : int;
  hot_symbol_share : float;
  order_bytes : int;
}

let default_params =
  { streams = 4; trades_per_stream = 500; symbols = 16; hot_symbol_share = 0.5; order_bytes = 512 }

type result = {
  elapsed : Time.span;
  trades : int;
  hot_trades : int;
  hot_tps : float;
  cold_tps : float;
  trade_response : Stat.summary;
  lock_waits : int;
}

(* Files: 0 holds per-symbol position rows (the contended updates),
   1..files-1 hold order history (insert-only). *)
let stream system params ~index ~rt ~hot_count ~on_done () =
  let cfg = Tp.System.config system in
  let session = Tp.System.session system ~cpu:(index mod cfg.Tp.System.worker_cpus) in
  let files = cfg.Tp.System.files in
  let sim = Tp.System.sim system in
  let rng = Rng.create (Int64.of_int (0x07DE + index)) in
  let order_base = (index + 1) * 50_000_000 in
  for trade = 0 to params.trades_per_stream - 1 do
    let symbol =
      if Rng.bool rng params.hot_symbol_share then 0 else 1 + Rng.int rng (params.symbols - 1)
    in
    let t0 = Sim.now sim in
    (match Tp.Txclient.begin_txn session with
    | Error e -> failwith ("order_match: begin: " ^ Tp.Txclient.error_to_string e)
    | Ok txn -> (
        (* The order record (no contention)... *)
        Tp.Txclient.insert_async session txn
          ~file:(1 + (trade mod (files - 1)))
          ~key:(order_base + trade) ~len:params.order_bytes ();
        (* ... and the position update on the symbol row (contended). *)
        Tp.Txclient.insert_async session txn ~file:0 ~key:symbol ~len:params.order_bytes ();
        match Tp.Txclient.commit session txn with
        | Ok () ->
            if symbol = 0 then incr hot_count;
            Stat.add_span rt (Sim.now sim - t0)
        | Error e -> failwith ("order_match: commit: " ^ Tp.Txclient.error_to_string e)))
  done;
  on_done ()

let run system params =
  if params.symbols < 2 then invalid_arg "Order_match.run: need at least two symbols";
  let sim = Tp.System.sim system in
  let node = Tp.System.node system in
  let cfg = Tp.System.config system in
  let rt = Stat.create ~name:"trade-rt" () in
  let hot_count = ref 0 in
  let gate = Gate.create params.streams in
  let started = Sim.now sim in
  for index = 0 to params.streams - 1 do
    let cpu = Node.cpu node (index mod cfg.Tp.System.worker_cpus) in
    ignore
      (Cpu.spawn cpu
         ~name:(Printf.sprintf "stream%d" index)
         (stream system params ~index ~rt ~hot_count ~on_done:(fun () -> Gate.arrive gate)))
  done;
  Gate.await gate;
  let elapsed = Sim.now sim - started in
  let trades = params.streams * params.trades_per_stream in
  let seconds = Time.to_sec elapsed in
  {
    elapsed;
    trades;
    hot_trades = !hot_count;
    hot_tps = (if seconds > 0.0 then float_of_int !hot_count /. seconds else 0.0);
    cold_tps = (if seconds > 0.0 then float_of_int (trades - !hot_count) /. seconds else 0.0);
    trade_response = Stat.summary rt;
    lock_waits = Tp.Lockmgr.conflicts (Tp.System.locks system);
  }
