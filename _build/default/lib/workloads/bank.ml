open Simkit
open Nsk

type params = {
  clients : int;
  txns_per_client : int;
  branches : int;
  tellers_per_branch : int;
  accounts : int;
  row_bytes : int;
}

let default_params =
  {
    clients = 4;
    txns_per_client = 250;
    branches = 2;
    tellers_per_branch = 10;
    accounts = 10_000;
    row_bytes = 256;
  }

type result = {
  elapsed : Time.span;
  committed : int;
  tps : float;
  response : Stat.summary;
  branch_conflicts : int;
  history_rows : int;
}

(* File roles. *)
let accounts_file = 0

let tellers_file = 1

let branches_file = 2

let history_file = 3

(* Seed the account/teller/branch rows so the measured transactions are
   pure updates with before-images. *)
let load_tables system params ~client_index =
  let cfg = Tp.System.config system in
  let session =
    Tp.System.session system ~cpu:(client_index mod cfg.Tp.System.worker_cpus)
  in
  let chunk = 64 in
  let insert_range file lo hi =
    let i = ref lo in
    while !i <= hi do
      let txn =
        match Tp.Txclient.begin_txn session with
        | Ok t -> t
        | Error e -> failwith ("bank load: " ^ Tp.Txclient.error_to_string e)
      in
      let upper = min hi (!i + chunk - 1) in
      for key = !i to upper do
        Tp.Txclient.insert_async session txn ~file ~key ~len:params.row_bytes ()
      done;
      (match Tp.Txclient.commit session txn with
      | Ok () -> ()
      | Error e -> failwith ("bank load commit: " ^ Tp.Txclient.error_to_string e));
      i := upper + 1
    done
  in
  (* Client 0 loads the shared small tables; accounts are striped over
     the clients. *)
  if client_index = 0 then begin
    insert_range branches_file 1 params.branches;
    insert_range tellers_file 1 (params.branches * params.tellers_per_branch)
  end;
  let per_client = (params.accounts + params.clients - 1) / params.clients in
  let lo = 1 + (client_index * per_client) in
  let hi = min params.accounts (lo + per_client - 1) in
  if lo <= hi then insert_range accounts_file lo hi

let client_loop system params ~index ~rt ~committed ~history ~on_done () =
  let cfg = Tp.System.config system in
  let session = Tp.System.session system ~cpu:(index mod cfg.Tp.System.worker_cpus) in
  let sim = Tp.System.sim system in
  let rng = Rng.create (Int64.of_int (0xBA2C + index)) in
  let history_base = (index + 1) * 100_000_000 in
  for i = 0 to params.txns_per_client - 1 do
    let account = 1 + Rng.int rng params.accounts in
    let branch = 1 + (account mod params.branches) in
    let teller = 1 + Rng.int rng (params.branches * params.tellers_per_branch) in
    let t0 = Sim.now sim in
    (* Deadlock avoidance: the contended rows are locked in a fixed
       hierarchy (account, then teller, then branch) by awaiting each
       update before issuing the next; only the uncontended history
       insert is asynchronous.  Lock-timeout victims abort and retry. *)
    let rec attempt retries =
      match Tp.Txclient.begin_txn session with
      | Error e -> failwith ("bank: begin: " ^ Tp.Txclient.error_to_string e)
      | Ok txn -> (
          let step file key =
            Tp.Txclient.insert session txn ~file ~key ~len:params.row_bytes ()
          in
          let updates =
            match step accounts_file account with
            | Ok () -> (
                match step tellers_file teller with
                | Ok () -> step branches_file branch
                | Error e -> Error e)
            | Error e -> Error e
          in
          match updates with
          | Error e ->
              ignore (Tp.Txclient.abort session txn);
              if retries > 0 then attempt (retries - 1)
              else failwith ("bank: gave up: " ^ Tp.Txclient.error_to_string e)
          | Ok () -> (
              Tp.Txclient.insert_async session txn ~file:history_file
                ~key:(history_base + i) ~len:params.row_bytes ();
              match Tp.Txclient.commit session txn with
              | Ok () ->
                  incr committed;
                  incr history;
                  Stat.add_span rt (Sim.now sim - t0)
              | Error e -> failwith ("bank: commit: " ^ Tp.Txclient.error_to_string e)))
    in
    attempt 3
  done;
  on_done ()

let run system params =
  if params.branches < 1 then invalid_arg "Bank.run: need at least one branch";
  let sim = Tp.System.sim system in
  let node = Tp.System.node system in
  let cfg = Tp.System.config system in
  let rt = Stat.create ~name:"bank-rt" () in
  let committed = ref 0 in
  let history = ref 0 in
  let conflicts_before = Tp.Lockmgr.conflicts (Tp.System.locks system) in
  (* Load phase. *)
  let load_gate = Gate.create params.clients in
  for index = 0 to params.clients - 1 do
    let cpu = Node.cpu node (index mod cfg.Tp.System.worker_cpus) in
    ignore
      (Cpu.spawn cpu
         ~name:(Printf.sprintf "bank-load%d" index)
         (fun () ->
           load_tables system params ~client_index:index;
           Gate.arrive load_gate))
  done;
  Gate.await load_gate;
  (* Measured phase. *)
  let gate = Gate.create params.clients in
  let started = Sim.now sim in
  for index = 0 to params.clients - 1 do
    let cpu = Node.cpu node (index mod cfg.Tp.System.worker_cpus) in
    ignore
      (Cpu.spawn cpu
         ~name:(Printf.sprintf "bank%d" index)
         (client_loop system params ~index ~rt ~committed ~history ~on_done:(fun () ->
              Gate.arrive gate)))
  done;
  Gate.await gate;
  let elapsed = Sim.now sim - started in
  {
    elapsed;
    committed = !committed;
    tps = (if elapsed = 0 then 0.0 else float_of_int !committed /. Time.to_sec elapsed);
    response = Stat.summary rt;
    branch_conflicts = Tp.Lockmgr.conflicts (Tp.System.locks system) - conflicts_before;
    history_rows = !history;
  }
