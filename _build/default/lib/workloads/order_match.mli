open Simkit

(** Stock-exchange order matching with hot symbols (paper §2).

    Brokerage streams submit buy/sell orders; matching a trade updates
    the {e same} position row for the traded symbol, so concurrent trades
    on one symbol serialize on its lock — and regulatory ordering forces
    each stream to wait for the previous trade's commit.  Per-symbol
    throughput is therefore inversely proportional to transaction
    response time: the Hot Stock problem.  A skewed symbol distribution
    (one headline stock taking a large share of volume) makes the effect
    visible in the per-symbol numbers. *)

type params = {
  streams : int;  (** brokerage feeds *)
  trades_per_stream : int;
  symbols : int;
  hot_symbol_share : float;  (** fraction of volume on symbol 0 *)
  order_bytes : int;
}

val default_params : params
(** 4 streams x 500 trades, 16 symbols, 50% on the headline stock. *)

type result = {
  elapsed : Time.span;
  trades : int;
  hot_trades : int;
  hot_tps : float;  (** trades/s on the headline symbol *)
  cold_tps : float;  (** trades/s on everything else *)
  trade_response : Stat.summary;
  lock_waits : int;  (** lock-manager conflicts observed *)
}

val run : Tp.System.t -> params -> result
