open Simkit

(** TPC-B-style banking transactions — the classic update-heavy ODS mix
    (the paper's §1 "retail, finance" examples).

    Each transaction updates one account, its teller and its branch, and
    appends a history row, then commits.  Unlike the insert-only
    hot-stock workload this one overwrites rows, so every update carries
    a before-image in the audit trail, and the handful of branch rows are
    natural hot spots.  Response-time-critical: each client issues the
    next transaction only after the previous commit. *)

type params = {
  clients : int;
  txns_per_client : int;
  branches : int;
  tellers_per_branch : int;
  accounts : int;
  row_bytes : int;
}

val default_params : params
(** 4 clients × 250 txns, 2 branches, 10 tellers each, 10 000 accounts,
    256-byte rows. *)

type result = {
  elapsed : Time.span;
  committed : int;
  tps : float;
  response : Stat.summary;
  branch_conflicts : int;  (** lock conflicts observed (mostly branches) *)
  history_rows : int;
}

val run : Tp.System.t -> params -> result
(** Loads the account/teller/branch tables first (one bulk transaction
    per client), then runs the measured mix.  Process context only. *)
