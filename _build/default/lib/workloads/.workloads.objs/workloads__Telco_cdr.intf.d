lib/workloads/telco_cdr.mli: Simkit Stat Time Tp
