lib/workloads/bank.mli: Simkit Stat Time Tp
