lib/workloads/bank.ml: Cpu Gate Int64 Node Nsk Printf Rng Sim Simkit Stat Time Tp
