lib/workloads/hot_stock.ml: Cpu Gate Node Nsk Printf Sim Simkit Stat Time Tp
