lib/workloads/hot_stock.mli: Simkit Stat Time Tp
