lib/workloads/order_match.mli: Simkit Stat Time Tp
