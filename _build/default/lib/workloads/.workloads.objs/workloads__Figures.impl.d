lib/workloads/figures.ml: Array Gate Hot_stock List Nsk Option Printf Sim Simkit Stat Time Tp
