lib/workloads/figures.mli: Hot_stock Simkit Time Tp
