lib/workloads/order_match.ml: Cpu Gate Int64 Node Nsk Printf Rng Sim Simkit Stat Time Tp
