lib/workloads/telco_cdr.ml: Cpu Gate Int64 Node Nsk Printf Rng Sim Simkit Stat Time Tp
