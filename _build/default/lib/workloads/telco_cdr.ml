open Simkit
open Nsk

type arrival = Closed | Open_poisson of float

type params = {
  switches : int;
  cdrs_per_switch : int;
  cdr_bytes : int;
  cdrs_per_txn : int;
  fraud_readers : int;
  arrival : arrival;
}

let default_params =
  {
    switches = 4;
    cdrs_per_switch = 1000;
    cdr_bytes = 256;
    cdrs_per_txn = 2;
    fraud_readers = 1;
    arrival = Closed;
  }

type result = {
  elapsed : Time.span;
  cdrs_inserted : int;
  cdrs_per_sec : float;
  txn_response : Stat.summary;
  lookups : int;
  lookup_hits : int;
}

(* One insert transaction of [n] CDRs starting at [start_seq]. *)
let one_txn system params ~session ~key_base ~start_seq ~n ~rt ~inserted =
  let sim = Tp.System.sim system in
  let files = (Tp.System.config system).Tp.System.files in
  let t0 = Sim.now sim in
  match Tp.Txclient.begin_txn session with
  | Error e -> failwith ("telco: begin: " ^ Tp.Txclient.error_to_string e)
  | Ok txn -> (
      for i = 0 to n - 1 do
        let key = key_base + start_seq + i in
        Tp.Txclient.insert_async session txn ~file:((start_seq + i) mod files) ~key
          ~len:params.cdr_bytes ()
      done;
      match Tp.Txclient.commit session txn with
      | Ok () ->
          inserted := !inserted + n;
          Stat.add_span rt (Sim.now sim - t0)
      | Error e -> failwith ("telco: commit: " ^ Tp.Txclient.error_to_string e))

(* One switch: a closed-loop stream of small insert transactions. *)
let switch system params ~index ~rt ~inserted ~on_done () =
  let cfg = Tp.System.config system in
  let session = Tp.System.session system ~cpu:(index mod cfg.Tp.System.worker_cpus) in
  let key_base = (index + 1) * 10_000_000 in
  let seq = ref 0 in
  while !seq < params.cdrs_per_switch do
    let n = min params.cdrs_per_txn (params.cdrs_per_switch - !seq) in
    one_txn system params ~session ~key_base ~start_seq:!seq ~n ~rt ~inserted;
    seq := !seq + n
  done;
  on_done ()

(* Open-loop switch: transactions arrive at Poisson intervals regardless
   of completion; each runs in its own worker so arrivals queue behind a
   saturated system instead of throttling it. *)
let open_switch system params ~index ~rate_cdrs ~rt ~inserted ~on_done () =
  let cfg = Tp.System.config system in
  let cpu_idx = index mod cfg.Tp.System.worker_cpus in
  let node = Tp.System.node system in
  let key_base = (index + 1) * 10_000_000 in
  let rng = Rng.create (Int64.of_int (0x0931 + index)) in
  let per_switch_txn_rate = rate_cdrs /. float_of_int params.switches /. float_of_int params.cdrs_per_txn in
  let mean_gap_ns = 1e9 /. per_switch_txn_rate in
  let total_txns = (params.cdrs_per_switch + params.cdrs_per_txn - 1) / params.cdrs_per_txn in
  let gate = Gate.create total_txns in
  let seq = ref 0 in
  for _ = 1 to total_txns do
    Sim.sleep (int_of_float (Rng.exponential rng ~mean:mean_gap_ns));
    let start_seq = !seq in
    let n = min params.cdrs_per_txn (params.cdrs_per_switch - start_seq) in
    seq := start_seq + n;
    (* Each switch keeps its own session per in-flight txn to avoid
       sharing issue-path state across workers. *)
    let session = Tp.System.session system ~cpu:cpu_idx in
    ignore
      (Nsk.Cpu.spawn (Nsk.Node.cpu node cpu_idx) ~name:"cdr-txn" (fun () ->
           one_txn system params ~session ~key_base ~start_seq ~n ~rt ~inserted;
           Gate.arrive gate))
  done;
  Gate.await gate;
  on_done ()

(* A fraud-detection reader probing recent CDRs: point lookups mixed
   with B-tree range scans over a window of one switch's stream. *)
let reader system params ~index ~stop ~lookups ~hits () =
  let cfg = Tp.System.config system in
  let session = Tp.System.session system ~cpu:(index mod cfg.Tp.System.worker_cpus) in
  let files = cfg.Tp.System.files in
  let rng = Rng.create (Int64.of_int (0xF4A + index)) in
  while not !stop do
    Sim.sleep (Time.ms 5);
    let switch_idx = Rng.int rng params.switches in
    let base = (switch_idx + 1) * 10_000_000 in
    let key = base + Rng.int rng (max 1 params.cdrs_per_switch) in
    if Rng.bool rng 0.25 then begin
      (* Window scan: e.g. all calls of a subscriber range. *)
      match Tp.Txclient.scan session ~file:(key mod files) ~lo:key ~hi:(key + 40) () with
      | Ok rows ->
          incr lookups;
          if rows <> [] then incr hits
      | Error _ -> ()
    end
    else
      match Tp.Txclient.lookup session ~file:(key mod files) ~key with
      | Ok (Some _) ->
          incr lookups;
          incr hits
      | Ok None -> incr lookups
      | Error _ -> ()
  done

let run system params =
  let sim = Tp.System.sim system in
  let node = Tp.System.node system in
  let cfg = Tp.System.config system in
  let rt = Stat.create ~name:"cdr-txn-rt" () in
  let inserted = ref 0 in
  let lookups = ref 0 in
  let hits = ref 0 in
  let stop = ref false in
  let gate = Gate.create params.switches in
  let started = Sim.now sim in
  for index = 0 to params.switches - 1 do
    let cpu = Node.cpu node (index mod cfg.Tp.System.worker_cpus) in
    let body =
      match params.arrival with
      | Closed -> switch system params ~index ~rt ~inserted ~on_done:(fun () -> Gate.arrive gate)
      | Open_poisson rate ->
          open_switch system params ~index ~rate_cdrs:rate ~rt ~inserted ~on_done:(fun () ->
              Gate.arrive gate)
    in
    ignore (Cpu.spawn cpu ~name:(Printf.sprintf "switch%d" index) body)
  done;
  for index = 0 to params.fraud_readers - 1 do
    let cpu = Node.cpu node (index mod cfg.Tp.System.worker_cpus) in
    ignore
      (Cpu.spawn cpu
         ~name:(Printf.sprintf "fraud%d" index)
         (reader system params ~index ~stop ~lookups ~hits))
  done;
  Gate.await gate;
  stop := true;
  let elapsed = Sim.now sim - started in
  {
    elapsed;
    cdrs_inserted = !inserted;
    cdrs_per_sec = (if elapsed = 0 then 0.0 else float_of_int !inserted /. Time.to_sec elapsed);
    txn_response = Stat.summary rt;
    lookups = !lookups;
    lookup_hits = !hits;
  }
