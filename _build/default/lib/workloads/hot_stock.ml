open Simkit
open Nsk

type params = {
  drivers : int;
  records_per_driver : int;
  record_bytes : int;
  inserts_per_txn : int;
}

let paper_params ~drivers ~inserts_per_txn =
  { drivers; records_per_driver = 32_000; record_bytes = 4096; inserts_per_txn }

let scaled_params ~drivers ~inserts_per_txn ~records_per_driver =
  { drivers; records_per_driver; record_bytes = 4096; inserts_per_txn }

type result = {
  elapsed : Time.span;
  txns : int;
  committed : int;
  response : Stat.summary;
  throughput_tps : float;
  audit_bytes : int;
  checkpoint_bytes : int;
}

let txn_size_label p =
  let bytes = p.inserts_per_txn * p.record_bytes in
  Printf.sprintf "%dk" (bytes / 1024)

(* One driver: a hotly traded stock.  Keys are unique per driver; inserts
   rotate over the files so each transaction touches every file, as the
   benchmark description requires. *)
let driver system params ~index ~response_stat ~committed ~on_done () =
  let cfg = Tp.System.config system in
  let session = Tp.System.session system ~cpu:(index mod cfg.Tp.System.worker_cpus) in
  let files = cfg.Tp.System.files in
  let key_base = (index + 1) * 100_000_000 in
  let total = params.records_per_driver in
  let per_txn = params.inserts_per_txn in
  let sim = Tp.System.sim system in
  let seq = ref 0 in
  (let rec txn_loop () =
     if !seq < total then begin
       let t0 = Sim.now sim in
       match Tp.Txclient.begin_txn session with
       | Error e ->
           failwith ("hot_stock: begin failed: " ^ Tp.Txclient.error_to_string e)
       | Ok txn ->
           let in_this_txn = min per_txn (total - !seq) in
           for i = 0 to in_this_txn - 1 do
             (* The per-transaction shift decorrelates file and partition
                so inserts really spread over files x volumes, as the
                benchmark description requires. *)
             let idx = !seq + i in
             let key = key_base + idx + (idx / per_txn) in
             let file = idx mod files in
             Tp.Txclient.insert_async session txn ~file ~key ~len:params.record_bytes ()
           done;
           seq := !seq + in_this_txn;
           (match Tp.Txclient.commit session txn with
           | Ok () ->
               incr committed;
               Stat.add_span response_stat (Sim.now sim - t0)
           | Error e ->
               failwith ("hot_stock: commit failed: " ^ Tp.Txclient.error_to_string e));
           txn_loop ()
     end
   in
   txn_loop ());
  on_done ()

let run system params =
  if params.drivers < 1 then invalid_arg "Hot_stock.run: need at least one driver";
  let sim = Tp.System.sim system in
  let node = Tp.System.node system in
  let response_stat = Stat.create ~name:"hot-stock-rt" () in
  let committed = ref 0 in
  let gate = Gate.create params.drivers in
  let started = Sim.now sim in
  for index = 0 to params.drivers - 1 do
    let cfg = Tp.System.config system in
    let cpu = Node.cpu node (index mod cfg.Tp.System.worker_cpus) in
    ignore
      (Cpu.spawn cpu
         ~name:(Printf.sprintf "driver%d" index)
         (driver system params ~index ~response_stat ~committed ~on_done:(fun () ->
              Gate.arrive gate)))
  done;
  Gate.await gate;
  let elapsed = Sim.now sim - started in
  let txns =
    params.drivers
    * ((params.records_per_driver + params.inserts_per_txn - 1) / params.inserts_per_txn)
  in
  {
    elapsed;
    txns;
    committed = !committed;
    response = Stat.summary response_stat;
    throughput_tps =
      (if elapsed = 0 then 0.0 else float_of_int !committed /. Time.to_sec elapsed);
    audit_bytes = Tp.System.total_audit_bytes system;
    checkpoint_bytes = Tp.System.checkpoint_message_bytes system;
  }
