open Simkit

type 'a outcome = Agreed of 'a | Mismatch of { primary_sum : int; shadow_sum : int }

let n_comparisons = ref 0

let n_mismatches = ref 0

let run ~fabric ~primary ~shadow ~work ~compute ~checksum =
  let sim = Cpu.sim primary in
  let primary_done : ('a * int) Ivar.t = Ivar.create () in
  let shadow_done : int Ivar.t = Ivar.create () in
  let (_ : Sim.pid) =
    Cpu.spawn primary ~name:"dandc:primary" (fun () ->
        Cpu.execute primary work;
        let v = compute ~replica:0 in
        Ivar.fill primary_done (v, checksum v))
  in
  let (_ : Sim.pid) =
    Cpu.spawn shadow ~name:"dandc:shadow" (fun () ->
        Cpu.execute shadow work;
        let v = compute ~replica:1 in
        Ivar.fill shadow_done (checksum v))
  in
  let value, primary_sum = Ivar.read primary_done in
  let shadow_sum = Ivar.read shadow_done in
  (* The shadow ships its checksum to the primary for comparison. *)
  Sim.sleep (Servernet.Fabric.transfer_time fabric ~bytes:64);
  ignore sim;
  incr n_comparisons;
  if primary_sum = shadow_sum then Agreed value
  else begin
    incr n_mismatches;
    Mismatch { primary_sum; shadow_sum }
  end

let comparisons () = !n_comparisons

let mismatches () = !n_mismatches
