open Simkit

type config = { takeover_delay : Time.span; ack_bytes : int }

let default_config = { takeover_delay = Time.ms 500; ack_bytes = 64 }

type 'ckpt t = {
  fabric : Servernet.Fabric.t;
  pp_name : string;
  cfg : config;
  apply : 'ckpt -> unit;
  serve : unit -> unit;
  on_takeover : unit -> unit;
  mutable primary : Cpu.t;
  mutable backup : Cpu.t option;
  mutable primary_pid : Sim.pid option;
  mutable applier_pid : Sim.pid option;
  mutable ckpt_chan : ('ckpt * unit Ivar.t) Mailbox.t;
  mutable halted : bool;
  mutable takeovers : int;
  mutable outage : Time.span;
  mutable ckpts : int;
  mutable ckpt_bytes : int;
}

let sim t = Cpu.sim t.primary

let rec spawn_primary t =
  let pid = Cpu.spawn t.primary ~name:(t.pp_name ^ ":primary") t.serve in
  t.primary_pid <- Some pid;
  Sim.on_exit (sim t) pid (fun _ -> if t.primary_pid = Some pid then primary_died t)

and primary_died t =
  t.primary_pid <- None;
  if not t.halted then begin
    match t.backup with
    | Some backup_cpu when Cpu.is_up backup_cpu ->
        let died_at = Sim.now (sim t) in
        Sim.at (sim t) ~after:t.cfg.takeover_delay (fun () ->
            if (not t.halted) && Cpu.is_up backup_cpu then begin
              (* Promote: the applier stops, the port moves, the serve
                 loop restarts against the checkpoint-built state. *)
              (match t.applier_pid with
              | Some pid when Sim.is_alive (sim t) pid -> Sim.kill (sim t) pid
              | _ -> ());
              t.applier_pid <- None;
              t.primary <- backup_cpu;
              t.backup <- None;
              t.takeovers <- t.takeovers + 1;
              t.outage <- t.outage + (Sim.now (sim t) - died_at);
              t.on_takeover ();
              spawn_primary t
            end
            else t.halted <- true)
    | _ -> t.halted <- true
  end

let applier_loop t () =
  while true do
    let ckpt, ack = Mailbox.recv t.ckpt_chan in
    t.apply ckpt;
    Ivar.fill ack ()
  done

let start ~fabric ~name ~primary ~backup ?(config = default_config) ~apply ~serve
    ~on_takeover () =
  let t =
    {
      fabric;
      pp_name = name;
      cfg = config;
      apply;
      serve;
      on_takeover;
      primary;
      backup = Some backup;
      primary_pid = None;
      applier_pid = None;
      ckpt_chan = Mailbox.create ~name:(name ^ ":ckpt") ();
      halted = false;
      takeovers = 0;
      outage = 0;
      ckpts = 0;
      ckpt_bytes = 0;
    }
  in
  spawn_primary t;
  let pid = Cpu.spawn backup ~name:(name ^ ":backup") (applier_loop t) in
  t.applier_pid <- Some pid;
  t

let backup_alive t =
  match t.backup with Some cpu -> Cpu.is_up cpu | None -> false

let checkpoint t ?(bytes = 256) ckpt =
  if backup_alive t then begin
    t.ckpts <- t.ckpts + 1;
    t.ckpt_bytes <- t.ckpt_bytes + bytes;
    (* Ship the state delta... *)
    Sim.sleep (Servernet.Fabric.transfer_time t.fabric ~bytes);
    if backup_alive t then begin
      let ack = Ivar.create () in
      Mailbox.send t.ckpt_chan (ckpt, ack);
      (* ... and wait for the backup to acknowledge before externalizing. *)
      match Ivar.read_timeout ack t.cfg.takeover_delay with
      | Some () -> Sim.sleep (Servernet.Fabric.transfer_time t.fabric ~bytes:t.cfg.ack_bytes)
      | None -> ()
    end
  end

let name t = t.pp_name

let primary_cpu t = t.primary

let has_backup t = backup_alive t

let is_halted t = t.halted

let takeovers t = t.takeovers

let outage_time t = t.outage

let checkpoints_sent t = t.ckpts

let checkpoint_bytes t = t.ckpt_bytes

let kill_primary t =
  match t.primary_pid with
  | Some pid when Sim.is_alive (sim t) pid -> Sim.kill (sim t) pid
  | _ -> ()

let halt t =
  t.halted <- true;
  (match t.primary_pid with
  | Some pid when Sim.is_alive (sim t) pid -> Sim.kill (sim t) pid
  | _ -> ());
  match t.applier_pid with
  | Some pid when Sim.is_alive (sim t) pid -> Sim.kill (sim t) pid
  | _ -> ()
