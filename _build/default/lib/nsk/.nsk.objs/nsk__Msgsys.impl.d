lib/nsk/msgsys.ml: Cpu Format Ivar List Mailbox Servernet Sim Simkit Time
