lib/nsk/cpu.mli: Servernet Sim Simkit Time
