lib/nsk/dandc.mli: Cpu Servernet Simkit Time
