lib/nsk/node.ml: Array Cpu Diskio List Servernet Sim Simkit String
