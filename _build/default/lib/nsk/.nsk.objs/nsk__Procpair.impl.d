lib/nsk/procpair.ml: Cpu Ivar Mailbox Servernet Sim Simkit Time
