lib/nsk/node.mli: Cpu Diskio Servernet Sim Simkit
