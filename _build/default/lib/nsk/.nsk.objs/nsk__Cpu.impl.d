lib/nsk/cpu.ml: List Printf Servernet Sim Simkit Time
