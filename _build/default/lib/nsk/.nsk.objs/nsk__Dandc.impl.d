lib/nsk/dandc.ml: Cpu Ivar Servernet Sim Simkit
