lib/nsk/msgsys.mli: Cpu Format Ivar Servernet Simkit Time
