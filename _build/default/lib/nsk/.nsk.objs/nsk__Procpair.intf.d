lib/nsk/procpair.mli: Cpu Servernet Simkit Time
