open Simkit

(** A NonStop node: a set of CPUs on a shared ServerNet fabric plus its
    disk volumes.  Convenience container used by the transaction stack,
    examples and benchmarks. *)

type t

val create : Sim.t -> ?fabric_config:Servernet.Fabric.config -> cpus:int -> unit -> t

val sim : t -> Sim.t

val fabric : t -> Servernet.Fabric.t

val cpu : t -> int -> Cpu.t
(** Raises [Invalid_argument] for an out-of-range index. *)

val cpus : t -> Cpu.t array

val cpu_count : t -> int

val add_volume :
  t ->
  name:string ->
  ?geometry:Diskio.Disk.geometry ->
  ?cache:Diskio.Disk.cache_config ->
  ?scheduling:Diskio.Volume.scheduling ->
  unit ->
  Diskio.Volume.t

val volumes : t -> Diskio.Volume.t list

val find_volume : t -> string -> Diskio.Volume.t option
