open Simkit

type t = {
  node_sim : Sim.t;
  node_fabric : Servernet.Fabric.t;
  node_cpus : Cpu.t array;
  mutable node_volumes : Diskio.Volume.t list;
}

let create sim ?fabric_config ~cpus () =
  if cpus <= 0 then invalid_arg "Node.create: need at least one CPU";
  let fabric = Servernet.Fabric.create sim ?config:fabric_config () in
  let node_cpus = Array.init cpus (fun index -> Cpu.create sim fabric ~index) in
  { node_sim = sim; node_fabric = fabric; node_cpus; node_volumes = [] }

let sim t = t.node_sim

let fabric t = t.node_fabric

let cpu t i =
  if i < 0 || i >= Array.length t.node_cpus then invalid_arg "Node.cpu: bad index";
  t.node_cpus.(i)

let cpus t = t.node_cpus

let cpu_count t = Array.length t.node_cpus

let add_volume t ~name ?geometry ?cache ?scheduling () =
  let vol = Diskio.Volume.create t.node_sim ~name ?geometry ?cache ?scheduling () in
  t.node_volumes <- vol :: t.node_volumes;
  vol

let volumes t = List.rev t.node_volumes

let find_volume t name =
  List.find_opt (fun v -> String.equal (Diskio.Volume.name v) name) t.node_volumes
