open Simkit

(** NonStop process pairs (Gray, TR-85.7).

    A pair runs a primary serve loop on one CPU and a checkpoint applier
    on another.  Before externalizing state changes the primary
    {!checkpoint}s them to the backup and waits for the acknowledgement.
    When the primary dies — process crash or CPU halt — the monitor
    promotes the backup after a detection delay: the component's
    [on_takeover] hook runs (typically {!Msgsys.move} of its port), and
    the serve loop restarts on the surviving CPU against the state the
    checkpoints built.

    ['ckpt] is the component's checkpoint record type; the pair is
    oblivious to its contents. *)

type 'ckpt t

type config = {
  takeover_delay : Time.span;
      (** failure detection + promotion; NonStop achieves "a second or
          less" (paper §4) *)
  ack_bytes : int;  (** size of the checkpoint acknowledgement *)
}

val default_config : config
(** 500 ms takeover, 64-byte acks. *)

val start :
  fabric:Servernet.Fabric.t ->
  name:string ->
  primary:Cpu.t ->
  backup:Cpu.t ->
  ?config:config ->
  apply:('ckpt -> unit) ->
  serve:(unit -> unit) ->
  on_takeover:(unit -> unit) ->
  unit ->
  'ckpt t
(** [apply] runs in the backup applier for every checkpoint received.
    [serve] is the primary's body; it is spawned on [primary] now and
    re-spawned on the surviving CPU after a takeover.  [on_takeover] runs
    first during promotion. *)

val checkpoint : 'ckpt t -> ?bytes:int -> 'ckpt -> unit
(** Ship a checkpoint to the backup and wait for its acknowledgement
    ([bytes], default 256, drives wire time).  Degrades to a no-op when
    no backup is alive.  Must be called from the primary (process
    context). *)

val name : 'ckpt t -> string

val primary_cpu : 'ckpt t -> Cpu.t

val has_backup : 'ckpt t -> bool

val is_halted : 'ckpt t -> bool
(** True once both sides have died: the service is lost. *)

val takeovers : 'ckpt t -> int

val outage_time : 'ckpt t -> Time.span
(** Cumulative time between a primary's death and its replacement
    serving — the availability cost of failures. *)

val checkpoints_sent : 'ckpt t -> int

val checkpoint_bytes : 'ckpt t -> int

val kill_primary : 'ckpt t -> unit
(** Fault injection: kill only the primary process (the monitor then
    promotes the backup as for any failure). *)

val halt : 'ckpt t -> unit
(** Tear the pair down deliberately (kills both sides, no takeover). *)
