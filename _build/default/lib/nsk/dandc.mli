open Simkit

(** Duplicate-and-compare execution (paper §1.3).

    Business-critical servers guard against silent data corruption by
    running redundant computations "with identical data and in identical
    state" on different processors and comparing results; a failed
    comparison exposes the corruption instead of letting it reach
    storage.  This harness runs a computation on two CPUs concurrently,
    exchanges checksums over the fabric, and reports agreement or
    mismatch. *)

type 'a outcome =
  | Agreed of 'a  (** both replicas produced this result *)
  | Mismatch of { primary_sum : int; shadow_sum : int }
      (** silent data corruption detected; discard and retry upstream *)

val run :
  fabric:Servernet.Fabric.t ->
  primary:Cpu.t ->
  shadow:Cpu.t ->
  work:Time.span ->
  compute:(replica:int -> 'a) ->
  checksum:('a -> int) ->
  'a outcome
(** Execute [compute ~replica:0] on [primary] and [compute ~replica:1] on
    [shadow], each costing [work] CPU time, in parallel; exchange and
    compare checksums (one message round trip).  Must run in process
    context.  The [replica] argument lets tests inject a corruption into
    one copy. *)

val comparisons : unit -> int
(** Total comparisons performed (global counter). *)

val mismatches : unit -> int
