lib/diskio/volume.mli: Disk Format Ivar Sim Simkit Stat Time
