lib/diskio/mirror.mli: Volume
