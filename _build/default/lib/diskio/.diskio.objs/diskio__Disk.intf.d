lib/diskio/disk.mli: Sim Simkit Time
