lib/diskio/mirror.ml: Simkit Volume
