lib/diskio/volume.ml: Disk Format Ivar List Mailbox Sim Simkit Stat Time
