lib/diskio/disk.ml: Rng Sim Simkit Time
