(** Mirrored volume pairs: writes go to both sides and complete when both
    have, reads are served by one side and fail over to the other.  This
    is how NonStop protects data volumes, and the same discipline the
    persistent-memory manager applies to NPMU pairs. *)

type t

val create : primary:Volume.t -> mirror:Volume.t -> t

val primary : t -> Volume.t

val mirror : t -> Volume.t

val write : t -> block:int -> len:int -> (unit, Volume.error) result
(** Completes when both sides have written; if one side is down the write
    still succeeds on the survivor (degraded), failing only when both
    sides are down. *)

val read : t -> block:int -> len:int -> (unit, Volume.error) result

val degraded : t -> bool
(** True when exactly one side is up. *)
