type t = { prim : Volume.t; mirr : Volume.t }

let create ~primary ~mirror = { prim = primary; mirr = mirror }

let primary t = t.prim

let mirror t = t.mirr

let write t ~block ~len =
  let a = Volume.submit t.prim ~kind:`Write ~block ~len in
  let b = Volume.submit t.mirr ~kind:`Write ~block ~len in
  let ra = Simkit.Ivar.read a in
  let rb = Simkit.Ivar.read b in
  match (ra, rb) with
  | Ok (), _ | _, Ok () -> Ok ()
  | Error e, Error _ -> Error e

let read t ~block ~len =
  match Volume.read t.prim ~block ~len with
  | Ok () -> Ok ()
  | Error _ -> Volume.read t.mirr ~block ~len

let degraded t = Volume.is_up t.prim <> Volume.is_up t.mirr
