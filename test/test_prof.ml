(* Tests for the self-profiler (Simkit.Prof), the zero-cost telemetry
   level, the single-access bounded heap pop, and the odsbench perf
   report schema. *)

open Simkit
open Workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* The global telemetry level leaks across tests unless restored. *)
let with_level l f =
  let saved = Obs.level () in
  Obs.set_level l;
  Fun.protect ~finally:(fun () -> Obs.set_level saved) f

(* --- Heap.pop_le: the single-access bounded pop --- *)

let test_heap_pop_le () =
  let h = Heap.create () in
  Heap.push h ~key:5 ~seq:1 "e";
  Heap.push h ~key:3 ~seq:2 "c";
  Heap.push h ~key:9 ~seq:3 "i";
  check_bool "below min: None" true (Heap.pop_le h ~max:2 = None);
  check_int "nothing removed" 3 (Heap.length h);
  (match Heap.pop_le h ~max:3 with
  | Some (3, 2, "c") -> ()
  | _ -> Alcotest.fail "expected (3, 2, c)");
  check_int "one removed" 2 (Heap.length h);
  (match Heap.pop_le h ~max:100 with
  | Some (5, 1, "e") -> ()
  | _ -> Alcotest.fail "expected (5, 1, e)");
  check_bool "empty heap: None" true (Heap.pop_le (Heap.create ()) ~max:max_int = None)

(* --- dispatch hooks --- *)

let test_dispatch_hooks () =
  let sim = Sim.create ~seed:1L () in
  let befores = ref 0 and afters = ref 0 and depth_hwm = ref 0 in
  Sim.set_dispatch_hooks sim
    ~before:(fun depth ->
      incr befores;
      if depth > !depth_hwm then depth_hwm := depth)
    ~after:(fun () -> incr afters);
  for i = 1 to 5 do
    Sim.at sim ~after:(Time.ms i) (fun () -> ())
  done;
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"p" (fun () ->
        Sim.sleep (Time.ms 2);
        Sim.sleep (Time.ms 2))
  in
  Sim.run sim;
  check_bool "hooks fired" true (!befores > 0);
  check_int "before/after paired" !befores !afters;
  check_bool "saw queue depth" true (!depth_hwm > 0);
  (* Clearing stops the counting but not the simulation. *)
  Sim.clear_dispatch_hooks sim;
  let b = !befores in
  Sim.at sim ~after:(Time.ms 100) (fun () -> ());
  Sim.run sim;
  check_int "cleared hooks silent" b !befores

(* --- sections: attribution and the suspension guard --- *)

let test_prof_sections () =
  let sim = Sim.create ~seed:2L () in
  let p = Prof.create () in
  Prof.install p sim;
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"worker" (fun () ->
        (* Clean section: begins and ends inside one dispatch slice. *)
        let s = Prof.section_begin () in
        Sys.opaque_identity (String.make 64 'x') |> ignore;
        Prof.section_end s "clean";
        (* Poisoned section: crosses a suspension, must be discarded. *)
        let s = Prof.section_begin () in
        Sim.sleep (Time.ms 1);
        Prof.section_end s "torn")
  in
  Sim.run sim;
  Prof.uninstall p;
  check_bool "events counted" true (Prof.events p > 0);
  let row name =
    match List.find_opt (fun r -> r.Prof.l_name = name) (Prof.layer_rows p) with
    | Some r -> r
    | None -> Alcotest.fail ("no row for " ^ name)
  in
  let clean = row "clean" in
  check_int "clean counted" 1 clean.Prof.l_events;
  check_int "clean kept" 0 clean.Prof.l_discarded;
  check_bool "clean saw the allocation" true (clean.Prof.l_minor > 0.0);
  let torn = row "torn" in
  check_int "torn not charged" 0 torn.Prof.l_events;
  check_int "torn discarded" 1 torn.Prof.l_discarded;
  (* With the profiler uninstalled the entry points are inert. *)
  check_bool "uninstalled" true (not (Prof.enabled ()));
  let s = Prof.section_begin () in
  Prof.section_end s "clean";
  check_int "no new sections" 1 (row "clean").Prof.l_events

let test_prof_single_install () =
  let sim = Sim.create ~seed:3L () in
  let p = Prof.create () in
  Prof.install p sim;
  Fun.protect
    ~finally:(fun () -> Prof.uninstall p)
    (fun () ->
      match Prof.install (Prof.create ()) sim with
      | () -> Alcotest.fail "second install must raise"
      | exception Invalid_argument _ -> ())

(* --- determinism: identical seeded runs agree bit-for-bit --- *)

let profiled_pm_cell () =
  let p = Prof.create () in
  let c =
    Figures.run_cell ~seed:0xF19L ~prof:p ~mode:Tp.System.Pm_audit ~drivers:2
      ~inserts_per_txn:8 ~records_per_driver:40 ()
  in
  (p, c.Figures.result.Hot_stock.committed)

let test_prof_deterministic () =
  (* One-time lazy initialisation (format caches, growing global
     buffers) lands in whichever run executes first in the process, so
     the determinism contract holds from the second run on — warm up
     once before comparing. *)
  let (_ : Prof.t * int) = profiled_pm_cell () in
  let a, ca = profiled_pm_cell () in
  let b, cb = profiled_pm_cell () in
  check_int "committed equal" ca cb;
  check_int "events equal" (Prof.events a) (Prof.events b);
  check_bool "minor words equal" true (Prof.minor_words a = Prof.minor_words b);
  check_int "heap hwm equal" (Prof.heap_depth_hwm a) (Prof.heap_depth_hwm b);
  check_int "envelopes equal" (Prof.envelope_count a) (Prof.envelope_count b);
  check_int "packets equal" (Prof.packet_count a) (Prof.packet_count b);
  check_int "pm writes equal" (Prof.pm_write_count a) (Prof.pm_write_count b);
  check_bool "pm cell has sections" true (Prof.layer_rows a <> []);
  List.iter2
    (fun (ra : Prof.layer_row) (rb : Prof.layer_row) ->
      check_string "layer name" ra.Prof.l_name rb.Prof.l_name;
      check_int ("sections " ^ ra.Prof.l_name) ra.Prof.l_events rb.Prof.l_events;
      check_int ("discards " ^ ra.Prof.l_name) ra.Prof.l_discarded rb.Prof.l_discarded;
      check_bool
        ("minor words " ^ ra.Prof.l_name)
        true
        (ra.Prof.l_minor = rb.Prof.l_minor))
    (List.sort compare (Prof.layer_rows a))
    (List.sort compare (Prof.layer_rows b))

(* --- the zero-cost disabled path --- *)

let test_disabled_path_allocates_nothing () =
  with_level Obs.Off @@ fun () ->
  let span_collector = Span.create () in
  (* [enable] forces the level up; undo that to test the gate itself. *)
  Span.enable span_collector;
  Obs.set_level Obs.Off;
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    let s = Prof.section_begin () in
    Prof.bump_envelope ();
    Prof.bump_packets 3;
    Prof.bump_pm_write ();
    Prof.section_end s "hot";
    let sp = Span.start span_collector "op" in
    Span.annotate sp ~key:"k" "v";
    Span.finish span_collector sp
  done;
  let delta = Gc.minor_words () -. w0 in
  (* The measurement itself boxes a couple of floats; the 10k-iteration
     loop must contribute nothing. *)
  check_bool
    (Printf.sprintf "disabled loop allocated %.0f words" delta)
    true (delta < 64.0);
  check_int "no spans recorded" 0 (Span.count span_collector)

let test_level_gates_counters () =
  with_level Obs.Off @@ fun () ->
  let probe = Probe.create ~name:"gated" () in
  Probe.enqueue probe;
  Probe.enqueue probe;
  Probe.dequeue probe;
  check_int "queue depth frozen while off" 0 (Probe.depth probe);
  check_int "nothing counted while off" 0 (Probe.enqueued probe);
  Obs.set_level Obs.Spans;
  Probe.enqueue probe;
  check_int "live again at Spans" 1 (Probe.depth probe)

(* --- perf report: schema round-trip and the baseline gate --- *)

let mem key doc =
  match Json.member key doc with Some v -> v | None -> Alcotest.fail ("missing " ^ key)

let test_perf_report_roundtrip () =
  let report = Perf.run ~records:30 () in
  let doc = Perf.to_json report in
  let parsed =
    match Json.parse (Json.to_string doc) with
    | Ok d -> d
    | Error e -> Alcotest.fail ("report does not re-parse: " ^ e)
  in
  check_bool "schema" true (Json.to_string_opt (mem "schema" parsed) = Some Perf.schema);
  check_bool "schema_version" true
    (Json.to_int_opt (mem "schema_version" parsed) = Some Perf.schema_version);
  let workloads =
    match Json.to_list_opt (mem "workloads" parsed) with
    | Some l -> l
    | None -> Alcotest.fail "workloads not a list"
  in
  Alcotest.(check (list string))
    "matrix names in order" Perf.workload_names
    (List.map (fun w -> Option.get (Json.to_string_opt (mem "name" w))) workloads);
  List.iter
    (fun w ->
      let int_field k = Option.get (Json.to_int_opt (mem k w)) in
      let float_field k = Option.get (Json.to_float_opt (mem k w)) in
      check_bool "events > 0" true (int_field "events" > 0);
      check_bool "events_per_sec > 0" true (float_field "events_per_sec" > 0.0);
      check_bool "committed > 0" true (int_field "committed" > 0);
      check_bool "layers present" true
        (match Json.to_list_opt (mem "layers" w) with
        | Some (_ :: _) -> true
        | _ -> false))
    workloads;
  (* The PM cell must attribute time to the fabric hot path. *)
  let pm =
    List.find (fun w -> Json.to_string_opt (mem "name" w) = Some "hot-stock-pm") workloads
  in
  let layer_names =
    List.map
      (fun l -> Option.get (Json.to_string_opt (mem "layer" l)))
      (Option.get (Json.to_list_opt (mem "layers" pm)))
  in
  check_bool "fabric attributed" true (List.mem "fabric" layer_names);
  check_bool "pm attributed" true (List.mem "pm" layer_names);
  (* Telemetry must not change simulated results. *)
  let o = mem "telemetry_overhead" parsed in
  check_bool "sim elapsed unchanged" true
    (Json.to_bool_opt (mem "sim_elapsed_equal" o) = Some true);
  check_bool "committed unchanged" true
    (Json.to_bool_opt (mem "committed_equal" o) = Some true);
  (* Baseline gate: a report never regresses against itself... *)
  (match Perf.compare_baseline ~baseline:parsed ~current:doc ~regress_pct:25.0 with
  | Ok verdicts ->
      check_int "one verdict per workload" (List.length Perf.workload_names)
        (List.length verdicts);
      check_bool "self-comparison ok" true (Perf.all_ok verdicts)
  | Error e -> Alcotest.fail e);
  (* ...and an inflated baseline trips it. *)
  let inflated =
    match parsed with
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (function
               | "workloads", Json.List ws ->
                   ( "workloads",
                     Json.List
                       (List.map
                          (function
                            | Json.Obj wf ->
                                Json.Obj
                                  (List.map
                                     (function
                                       | "events_per_sec", Json.Float e ->
                                           ("events_per_sec", Json.Float (e *. 100.0))
                                       | kv -> kv)
                                     wf)
                            | w -> w)
                          ws) )
               | kv -> kv)
             fields)
    | _ -> Alcotest.fail "report is not an object"
  in
  (match Perf.compare_baseline ~baseline:inflated ~current:doc ~regress_pct:25.0 with
  | Ok verdicts -> check_bool "inflated baseline trips the gate" false (Perf.all_ok verdicts)
  | Error e -> Alcotest.fail e);
  check_bool "threshold validated" true
    (match Perf.compare_baseline ~baseline:parsed ~current:doc ~regress_pct:0.0 with
    | Error _ -> true
    | Ok _ -> false)

let test_perf_json_errors () =
  (match Json.parse "{\"schema\": \"x\"}" with
  | Ok d ->
      check_bool "no workloads is an error" true
        (match Perf.events_per_sec_of_json d with Error _ -> true | Ok _ -> false)
  | Error e -> Alcotest.fail e);
  check_bool "trailing garbage rejected" true
    (match Json.parse "{} junk" with Error _ -> true | Ok _ -> false)

let suite =
  [
    ( "prof",
      [
        Alcotest.test_case "heap pop_le" `Quick test_heap_pop_le;
        Alcotest.test_case "dispatch hooks" `Quick test_dispatch_hooks;
        Alcotest.test_case "sections + suspension guard" `Quick test_prof_sections;
        Alcotest.test_case "single install" `Quick test_prof_single_install;
        Alcotest.test_case "deterministic across runs" `Quick test_prof_deterministic;
        Alcotest.test_case "disabled path allocates nothing" `Quick
          test_disabled_path_allocates_nothing;
        Alcotest.test_case "level gates counters" `Quick test_level_gates_counters;
        Alcotest.test_case "perf report round-trip" `Quick test_perf_report_roundtrip;
        Alcotest.test_case "perf json errors" `Quick test_perf_json_errors;
      ] );
  ]
