(* Component-level tests of the transaction stack: ADP group commit and
   takeover, transaction abort/undo, TMF behaviour, log backends. *)

open Simkit
open Nsk
open Tp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A minimal rig: node + one disk-backed ADP pair. *)
let make_adp_rig () =
  let sim = Sim.create ~seed:0xADBL () in
  let node = Node.create sim ~cpus:3 () in
  let vol = Node.add_volume node ~name:"$AUDIT" () in
  let backend = Log_backend.disk vol in
  let adp =
    Adp.start ~fabric:(Node.fabric node) ~name:"$ADP" ~primary:(Node.cpu node 0)
      ~backup:(Node.cpu node 1) ~backend ()
  in
  (sim, node, adp, backend)

let append_one adp ~from i =
  match Msgsys.call (Adp.server adp) ~from (Adp.Append [ Audit.Begin { txn = i } ]) with
  | Ok (Adp.Appended { last_asn }) -> last_asn
  | _ -> Alcotest.fail "append failed"

let flush_through adp ~from asn =
  match Msgsys.call (Adp.server adp) ~from (Adp.Flush { through = asn; deadline = 0 }) with
  | Ok (Adp.Flushed { durable }) -> durable
  | _ -> Alcotest.fail "flush failed"

let test_adp_append_then_flush () =
  let sim, node, adp, backend = make_adp_rig () in
  Test_util.run_in sim (fun () ->
      let from = Node.cpu node 2 in
      let asn1 = append_one adp ~from 1 in
      let asn2 = append_one adp ~from 2 in
      check_bool "asns increase" true (asn2 > asn1);
      check_int "nothing durable yet" 0 (Adp.durable_asn adp);
      let durable = flush_through adp ~from asn2 in
      check_bool "covers request" true (durable >= asn2);
      check_int "one backend write for both" 1 (Log_backend.writes backend))

let test_adp_group_commit () =
  (* Six concurrent append+flush clients: the spinning disk write in
     progress absorbs later requests, so backend writes << flushes. *)
  let sim, node, adp, backend = make_adp_rig () in
  let g = Gate.create 6 in
  for i = 1 to 6 do
    let (_ : Sim.pid) =
      Cpu.spawn (Node.cpu node 2)
        ~name:(Printf.sprintf "committer%d" i)
        (fun () ->
          let from = Node.cpu node 2 in
          let asn = append_one adp ~from i in
          let (_ : int) = flush_through adp ~from asn in
          Gate.arrive g)
    in
    ()
  done;
  let done_ = ref false in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"watcher" (fun () ->
        Gate.await g;
        done_ := true)
  in
  Sim.run sim;
  check_bool "all committed" true !done_;
  check_int "six flush requests" 6 (Adp.flush_requests adp);
  check_bool
    (Printf.sprintf "group commit batches (%d writes for 6 flushes)" (Log_backend.writes backend))
    true
    (Log_backend.writes backend <= 3)

let test_adp_flush_idempotent () =
  let sim, node, adp, _ = make_adp_rig () in
  Test_util.run_in sim (fun () ->
      let from = Node.cpu node 2 in
      let asn = append_one adp ~from 1 in
      let d1 = flush_through adp ~from asn in
      let t0 = Sim.now sim in
      let d2 = flush_through adp ~from asn in
      check_int "same horizon" d1 d2;
      (* The second flush is satisfied without a disk write. *)
      check_bool "instant when already durable" true (Sim.now sim - t0 < Time.ms 1))

let test_adp_takeover_preserves_buffer () =
  (* Buffered-but-unflushed records must survive a primary failure via
     the checkpoint stream. *)
  let sim, node, adp, _ = make_adp_rig () in
  let result = ref 0 in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let from = Node.cpu node 2 in
        let asn = append_one adp ~from 1 in
        let (_ : Audit.asn) = append_one adp ~from 2 in
        Adp.kill_primary adp;
        Sim.sleep (Time.sec 1);
        (* The promoted backup can still flush them. *)
        match
          Rpc.call_retry (Adp.server adp) ~from (Adp.Flush { through = asn + 1; deadline = 0 })
        with
        | Ok (Adp.Flushed { durable }) -> result := durable
        | _ -> Alcotest.fail "post-takeover flush failed")
  in
  Sim.run sim;
  check_bool "durable past both appends" true (!result >= 2);
  check_int "one takeover" 1 (Adp.pair_takeovers adp)

let test_pm_adp_append_is_durable () =
  (* With a PM backend, Append alone advances the durable horizon. *)
  let sim = Sim.create ~seed:0xADCL () in
  let node = Node.create sim ~cpus:3 () in
  let fabric = Node.fabric node in
  let done_ = ref false in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let npmu_a = Pm.Npmu.create sim fabric ~name:"a" ~capacity:(1 lsl 20) in
        let npmu_b = Pm.Npmu.create sim fabric ~name:"b" ~capacity:(1 lsl 20) in
        let dev_a = Pm.Pmm.device_of_npmu npmu_a in
        let dev_b = Pm.Pmm.device_of_npmu npmu_b in
        Pm.Pmm.format Pm.Pmm.default_config dev_a dev_b;
        let pmm =
          Pm.Pmm.start ~fabric ~name:"$PMM" ~primary_cpu:(Node.cpu node 0)
            ~backup_cpu:(Node.cpu node 1) ~primary_dev:dev_a ~mirror_dev:dev_b ()
        in
        let client =
          Pm.Pm_client.attach ~cpu:(Node.cpu node 0) ~fabric ~pmm:(Pm.Pmm.server pmm) ()
        in
        let handle =
          Test_util.ok_or_fail ~msg:"region"
            (Pm.Pm_client.create_region client ~name:"trail" ~size:(1 lsl 18))
        in
        let backend = Log_backend.pm client handle in
        check_bool "pm backend is synchronous" true (Log_backend.synchronous backend);
        let adp =
          Adp.start ~fabric ~name:"$ADP" ~primary:(Node.cpu node 0) ~backup:(Node.cpu node 1)
            ~backend ()
        in
        let from = Node.cpu node 2 in
        let asn = append_one adp ~from 1 in
        check_int "durable immediately" asn (Adp.durable_asn adp);
        let t0 = Sim.now sim in
        let (_ : int) = flush_through adp ~from asn in
        check_bool "flush returns without device work" true (Sim.now sim - t0 < Time.ms 1);
        (* And the record really is on the devices. *)
        (match Log_backend.recovery_read backend with
        | Ok [ (a, Audit.Begin { txn = 1 }) ] -> check_int "asn" asn a
        | Ok _ -> Alcotest.fail "unexpected trail contents"
        | Error e -> Alcotest.fail e);
        done_ := true)
  in
  Sim.run sim;
  check_bool "ran" true !done_

(* --- Abort and undo through the full stack --- *)

let build_small mode f =
  let sim = Sim.create ~seed:0x0A0BL () in
  let cfg =
    match mode with
    | `Disk -> System.default_config
    | `Pm ->
        { System.pm_config with System.pm_capacity = 8 * 1024 * 1024; pm_region_bytes = 1024 * 1024 }
  in
  let out = ref None in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let system = System.build sim cfg in
        out := Some (f system))
  in
  Sim.run sim;
  match !out with Some v -> v | None -> Alcotest.fail "run did not complete"

let test_abort_undoes_insert () =
  build_small `Disk (fun system ->
      let session = System.session system ~cpu:2 in
      let txn = Test_util.ok_or_fail ~msg:"begin" (Txclient.begin_txn session) in
      Test_util.check_result_ok "insert" (Txclient.insert session txn ~file:0 ~key:77 ~len:512 ());
      Test_util.check_result_ok "abort" (Txclient.abort session txn);
      Sim.sleep (Time.ms 50);
      match Txclient.lookup session ~file:0 ~key:77 with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "aborted insert still visible"
      | Error e -> Alcotest.fail (Txclient.error_to_string e))

let test_abort_restores_before_image () =
  build_small `Disk (fun system ->
      let session = System.session system ~cpu:2 in
      (* Commit version 1... *)
      let t1 = Test_util.ok_or_fail ~msg:"begin1" (Txclient.begin_txn session) in
      Test_util.check_result_ok "insert1" (Txclient.insert session t1 ~file:1 ~key:5 ~len:100 ());
      Test_util.check_result_ok "commit1" (Txclient.commit session t1);
      Sim.sleep (Time.ms 50);
      let v1 =
        match Txclient.lookup session ~file:1 ~key:5 with
        | Ok (Some v) -> v
        | _ -> Alcotest.fail "missing committed row"
      in
      (* ... then overwrite in a transaction that aborts. *)
      let t2 = Test_util.ok_or_fail ~msg:"begin2" (Txclient.begin_txn session) in
      Test_util.check_result_ok "insert2" (Txclient.insert session t2 ~file:1 ~key:5 ~len:999 ());
      Test_util.check_result_ok "abort2" (Txclient.abort session t2);
      Sim.sleep (Time.ms 50);
      match Txclient.lookup session ~file:1 ~key:5 with
      | Ok (Some v) -> check_bool "before-image restored" true (v = v1)
      | _ -> Alcotest.fail "row vanished after abort")

let test_locks_released_after_commit () =
  build_small `Disk (fun system ->
      let s1 = System.session system ~cpu:2 in
      let s2 = System.session system ~cpu:3 in
      let t1 = Test_util.ok_or_fail ~msg:"begin1" (Txclient.begin_txn s1) in
      Test_util.check_result_ok "insert1" (Txclient.insert s1 t1 ~file:2 ~key:9 ~len:64 ());
      Test_util.check_result_ok "commit1" (Txclient.commit s1 t1);
      (* The lock release rides behind the commit reply; a second writer
         must get the key shortly after. *)
      let t2 = Test_util.ok_or_fail ~msg:"begin2" (Txclient.begin_txn s2) in
      Test_util.check_result_ok "insert2 same key" (Txclient.insert s2 t2 ~file:2 ~key:9 ~len:64 ());
      Test_util.check_result_ok "commit2" (Txclient.commit s2 t2))

let test_scan_across_partitions () =
  build_small `Disk (fun system ->
      let session = System.session system ~cpu:2 in
      (* Insert keys 100..131 into file 2: they spread over 4 partitions. *)
      let txn = Test_util.ok_or_fail ~msg:"begin" (Txclient.begin_txn session) in
      for key = 100 to 131 do
        Txclient.insert_async session txn ~file:2 ~key ~len:64 ()
      done;
      Test_util.check_result_ok "commit" (Txclient.commit session txn);
      match Txclient.scan session ~file:2 ~lo:108 ~hi:119 () with
      | Ok rows ->
          check_int "12 rows in window" 12 (List.length rows);
          let keys = List.map (fun (k, _, _) -> k) rows in
          check_bool "merged ascending" true (keys = List.init 12 (fun i -> 108 + i));
          check_bool "other file empty" true
            (Txclient.scan session ~file:3 ~lo:0 ~hi:max_int () = Ok [])
      | Error e -> Alcotest.fail (Txclient.error_to_string e))

let test_index_height_grows () =
  build_small `Disk (fun system ->
      let session = System.session system ~cpu:2 in
      let txn = Test_util.ok_or_fail ~msg:"begin" (Txclient.begin_txn session) in
      (* Everything on one partition: key mod 4 = 0, file 0 -> DP2 0. *)
      for i = 0 to 199 do
        Txclient.insert_async session txn ~file:0 ~key:(i * 4) ~len:16 ()
      done;
      Test_util.check_result_ok "commit" (Txclient.commit session txn);
      check_bool "b-tree grew levels" true (Dp2.index_height (System.dp2s system).(0) >= 2))

let test_tmf_counts () =
  build_small `Disk (fun system ->
      let session = System.session system ~cpu:2 in
      let t1 = Test_util.ok_or_fail ~msg:"b1" (Txclient.begin_txn session) in
      Test_util.check_result_ok "c1" (Txclient.commit session t1);
      let t2 = Test_util.ok_or_fail ~msg:"b2" (Txclient.begin_txn session) in
      Test_util.check_result_ok "a2" (Txclient.abort session t2);
      check_int "begun" 2 (Tmf.begun (System.tmf system));
      check_int "committed" 1 (Tmf.committed (System.tmf system));
      check_int "aborted" 1 (Tmf.aborted (System.tmf system));
      check_int "no active left" 0 (List.length (Tmf.active_txns (System.tmf system))))

let test_dp2_takeover_under_load () =
  (* Kill a DP2 primary mid-benchmark: the run completes and the
     checkpoint-built table on the backup has every row. *)
  let sim = Sim.create ~seed:0xD27L () in
  let out = ref None in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let system = System.build sim System.default_config in
        Sim.at sim ~after:(Time.ms 100) (fun () -> Dp2.kill_primary (System.dp2s system).(3));
        let params =
          Workloads.Hot_stock.scaled_params ~drivers:2 ~inserts_per_txn:8 ~records_per_driver:200
        in
        let r = Workloads.Hot_stock.run system params in
        Sim.sleep (Time.sec 1);
        let rows = Array.fold_left (fun acc d -> acc + Dp2.table_size d) 0 (System.dp2s system) in
        out := Some (r, rows, Dp2.pair_takeovers (System.dp2s system).(3)))
  in
  Sim.run sim;
  match !out with
  | None -> Alcotest.fail "run did not complete"
  | Some (r, rows, takeovers) ->
      check_int "all transactions committed" 50 r.Workloads.Hot_stock.committed;
      check_int "no rows lost" 400 rows;
      check_int "one takeover" 1 takeovers

let test_tmf_takeover_between_txns () =
  let sim = Sim.create ~seed:0x73FL () in
  let ok = ref false in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let system = System.build sim System.default_config in
        let session = System.session system ~cpu:2 in
        let t1 = Test_util.ok_or_fail ~msg:"b1" (Txclient.begin_txn session) in
        Test_util.check_result_ok "c1" (Txclient.commit session t1);
        Tmf.kill_primary (System.tmf system);
        Sim.sleep (Time.sec 1);
        (* The promoted backup knows the txn counter from checkpoints. *)
        let t2 = Test_util.ok_or_fail ~msg:"b2 after takeover" (Txclient.begin_txn session) in
        check_bool "txn ids keep increasing" true (Txclient.txn_id t2 > Txclient.txn_id t1);
        Test_util.check_result_ok "c2" (Txclient.commit session t2);
        ok := true)
  in
  Sim.run sim;
  check_bool "completed" true !ok

let suite =
  [
    ( "tp.adp",
      [
        Alcotest.test_case "append then flush" `Quick test_adp_append_then_flush;
        Alcotest.test_case "group commit batches writes" `Quick test_adp_group_commit;
        Alcotest.test_case "flush of durable asn is instant" `Quick test_adp_flush_idempotent;
        Alcotest.test_case "takeover keeps buffered audit" `Quick test_adp_takeover_preserves_buffer;
        Alcotest.test_case "PM append is immediately durable" `Quick test_pm_adp_append_is_durable;
      ] );
    ( "tp.transactions",
      [
        Alcotest.test_case "abort undoes an insert" `Quick test_abort_undoes_insert;
        Alcotest.test_case "abort restores the before-image" `Quick test_abort_restores_before_image;
        Alcotest.test_case "locks released after commit" `Quick test_locks_released_after_commit;
        Alcotest.test_case "range scan across partitions" `Quick test_scan_across_partitions;
        Alcotest.test_case "index height grows with rows" `Quick test_index_height_grows;
        Alcotest.test_case "TMF bookkeeping" `Quick test_tmf_counts;
      ] );
    ( "tp.failover",
      [
        Alcotest.test_case "DP2 takeover under load" `Quick test_dp2_takeover_under_load;
        Alcotest.test_case "TMF takeover between transactions" `Quick test_tmf_takeover_between_txns;
      ] );
  ]

(* --- Cluster: cross-node sessions --- *)

let test_cluster_remote_transaction () =
  let sim = Sim.create ~seed:0xC105L () in
  let out = ref None in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let cfg =
          { System.pm_config with System.pm_capacity = 8 * 1024 * 1024; pm_region_bytes = 1024 * 1024 }
        in
        let cluster = Cluster.build sim ~nodes:2 ~wan_latency:(Time.ms 2) cfg in
        (* A local and a remote session run the same single-insert txn. *)
        let run session =
          let t0 = Sim.now sim in
          let txn = Test_util.ok_or_fail ~msg:"begin" (Txclient.begin_txn session) in
          Test_util.check_result_ok "insert" (Txclient.insert session txn ~file:0 ~key:5 ~len:128 ());
          Test_util.check_result_ok "commit" (Txclient.commit session txn);
          Sim.now sim - t0
        in
        let local = run (Cluster.local_session cluster ~node:1 ~cpu:2) in
        let remote = run (Cluster.remote_session cluster ~from_node:0 ~target:1 ~cpu:2) in
        (* The row landed on node 1 both times; node 0 holds nothing. *)
        let rows n =
          Array.fold_left (fun acc d -> acc + Dp2.table_size d) 0
            (System.dp2s (Cluster.system cluster n))
        in
        out := Some (local, remote, rows 0, rows 1, Cluster.total_committed cluster))
  in
  Sim.run sim;
  match !out with
  | None -> Alcotest.fail "cluster run incomplete"
  | Some (local, remote, rows0, rows1, committed) ->
      check_int "target node holds the row" 1 rows1;
      check_int "origin node untouched" 0 rows0;
      check_int "two commits" 2 committed;
      (* begin + insert + commit each pay 2 x 2 ms of link. *)
      check_bool
        (Printf.sprintf "remote pays the link (local %s, remote %s)" (Time.to_string local)
           (Time.to_string remote))
        true
        (remote > local + Time.ms 10)

let cluster_cases =
  [ Alcotest.test_case "remote session commits across the link" `Quick test_cluster_remote_transaction ]

let suite = suite @ [ ("tp.cluster", cluster_cases) ]

(* --- Isolation (paper section 1.1: strong serializability) --- *)

let test_read_blocks_on_uncommitted_write () =
  (* A transactional read must not see another transaction's uncommitted
     insert: it waits for the exclusive lock and then sees the committed
     value. *)
  let sim = Sim.create ~seed:0x150L () in
  let observed = ref None in
  let observed_at = ref Time.zero in
  let committed_at = ref Time.zero in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let system = System.build sim System.default_config in
        let writer = System.session system ~cpu:2 in
        let reader = System.session system ~cpu:3 in
        let node = System.node system in
        let wtxn = Test_util.ok_or_fail ~msg:"w-begin" (Txclient.begin_txn writer) in
        Test_util.check_result_ok "w-insert" (Txclient.insert writer wtxn ~file:1 ~key:33 ~len:777 ());
        (* The reader starts while the writer still holds the lock. *)
        let g = Gate.create 1 in
        ignore
          (Nsk.Cpu.spawn (Nsk.Node.cpu node 3) ~name:"reader" (fun () ->
               let rtxn = Test_util.ok_or_fail ~msg:"r-begin" (Txclient.begin_txn reader) in
               (match Txclient.read reader rtxn ~file:1 ~key:33 with
               | Ok v ->
                   observed := Some v;
                   observed_at := Sim.now sim
               | Error e -> Alcotest.fail (Txclient.error_to_string e));
               Test_util.check_result_ok "r-commit" (Txclient.commit reader rtxn);
               Gate.arrive g));
        (* Hold the lock a while, then commit. *)
        Sim.sleep (Time.ms 50);
        Test_util.check_result_ok "w-commit" (Txclient.commit writer wtxn);
        committed_at := Sim.now sim;
        Gate.await g)
  in
  Sim.run sim;
  (match !observed with
  | Some (Some (777, _)) -> ()
  | Some None -> Alcotest.fail "read saw nothing (lost committed write)"
  | Some (Some (len, _)) -> Alcotest.failf "read saw wrong length %d" len
  | None -> Alcotest.fail "reader never ran");
  check_bool "read completed only after the commit" true (!observed_at >= !committed_at)

let test_read_never_sees_aborted_write () =
  let sim = Sim.create ~seed:0x151L () in
  let observed = ref None in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let system = System.build sim System.default_config in
        let writer = System.session system ~cpu:2 in
        let reader = System.session system ~cpu:3 in
        let node = System.node system in
        (* Commit a first version. *)
        let t1 = Test_util.ok_or_fail ~msg:"b1" (Txclient.begin_txn writer) in
        Test_util.check_result_ok "i1" (Txclient.insert writer t1 ~file:1 ~key:44 ~len:100 ());
        Test_util.check_result_ok "c1" (Txclient.commit writer t1);
        Sim.sleep (Time.ms 50);
        (* Overwrite but abort, with a concurrent locked read. *)
        let t2 = Test_util.ok_or_fail ~msg:"b2" (Txclient.begin_txn writer) in
        Test_util.check_result_ok "i2" (Txclient.insert writer t2 ~file:1 ~key:44 ~len:999 ());
        let g = Gate.create 1 in
        ignore
          (Nsk.Cpu.spawn (Nsk.Node.cpu node 3) ~name:"reader" (fun () ->
               let rtxn = Test_util.ok_or_fail ~msg:"rb" (Txclient.begin_txn reader) in
               (match Txclient.read reader rtxn ~file:1 ~key:44 with
               | Ok v -> observed := Some v
               | Error e -> Alcotest.fail (Txclient.error_to_string e));
               Test_util.check_result_ok "rc" (Txclient.commit reader rtxn);
               Gate.arrive g));
        Sim.sleep (Time.ms 20);
        Test_util.check_result_ok "abort" (Txclient.abort writer t2);
        Gate.await g)
  in
  Sim.run sim;
  match !observed with
  | Some (Some (100, _)) -> ()
  | Some (Some (len, _)) -> Alcotest.failf "dirty read of aborted length %d" len
  | Some None -> Alcotest.fail "row vanished"
  | None -> Alcotest.fail "reader never ran"

let test_repeatable_read () =
  (* Two reads of the same row inside one transaction return the same
     value even though another writer wants the row: the shared lock
     holds it off until the reader commits. *)
  let sim = Sim.create ~seed:0x152L () in
  let reads = ref [] in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let system = System.build sim System.default_config in
        let writer = System.session system ~cpu:2 in
        let reader = System.session system ~cpu:3 in
        let node = System.node system in
        let t1 = Test_util.ok_or_fail ~msg:"b1" (Txclient.begin_txn writer) in
        Test_util.check_result_ok "i1" (Txclient.insert writer t1 ~file:2 ~key:50 ~len:111 ());
        Test_util.check_result_ok "c1" (Txclient.commit writer t1);
        Sim.sleep (Time.ms 50);
        let g = Gate.create 2 in
        ignore
          (Nsk.Cpu.spawn (Nsk.Node.cpu node 3) ~name:"reader" (fun () ->
               let rtxn = Test_util.ok_or_fail ~msg:"rb" (Txclient.begin_txn reader) in
               (match Txclient.read reader rtxn ~file:2 ~key:50 with
               | Ok (Some (len, _)) -> reads := len :: !reads
               | _ -> Alcotest.fail "first read failed");
               Sim.sleep (Time.ms 60);
               (match Txclient.read reader rtxn ~file:2 ~key:50 with
               | Ok (Some (len, _)) -> reads := len :: !reads
               | _ -> Alcotest.fail "second read failed");
               Test_util.check_result_ok "rc" (Txclient.commit reader rtxn);
               Gate.arrive g));
        ignore
          (Nsk.Cpu.spawn (Nsk.Node.cpu node 2) ~name:"writer2" (fun () ->
               Sim.sleep (Time.ms 10);
               (* Tries to overwrite while the reader holds the share. *)
               let t2 = Test_util.ok_or_fail ~msg:"b2" (Txclient.begin_txn writer) in
               Test_util.check_result_ok "i2" (Txclient.insert writer t2 ~file:2 ~key:50 ~len:222 ());
               Test_util.check_result_ok "c2" (Txclient.commit writer t2);
               Gate.arrive g));
        Gate.await g)
  in
  Sim.run sim;
  match !reads with
  | [ second; first ] ->
      check_int "first read" 111 first;
      check_int "repeatable" first second
  | _ -> Alcotest.fail "expected two reads"

let isolation_cases =
  [
    Alcotest.test_case "read blocks on uncommitted write" `Quick
      test_read_blocks_on_uncommitted_write;
    Alcotest.test_case "aborted write never observed" `Quick test_read_never_sees_aborted_write;
    Alcotest.test_case "repeatable read within a transaction" `Quick test_repeatable_read;
  ]

let suite = suite @ [ ("tp.isolation", isolation_cases) ]

(* --- Trail trimming (audit archiving) --- *)

let test_trim_durable_prefix () =
  let sim, node, adp, backend = make_adp_rig () in
  Test_util.run_in sim (fun () ->
      let from = Node.cpu node 2 in
      let a1 = append_one adp ~from 1 in
      let a2 = append_one adp ~from 2 in
      let (_ : int) = flush_through adp ~from a2 in
      (* Trimming beyond the durable horizon is refused. *)
      (match Msgsys.call (Adp.server adp) ~from (Adp.Trim { through = a2 + 5 }) with
      | Ok (Adp.A_failed _) -> ()
      | _ -> Alcotest.fail "over-trim accepted");
      (match Msgsys.call (Adp.server adp) ~from (Adp.Trim { through = a1 }) with
      | Ok (Adp.Trimmed { records }) -> check_int "one record archived" 1 records
      | _ -> Alcotest.fail "trim failed");
      match Log_backend.recovery_read backend with
      | Ok [ (asn, Audit.Begin { txn = 2 }) ] -> check_int "tail kept" a2 asn
      | Ok l -> Alcotest.failf "unexpected trail length %d" (List.length l)
      | Error e -> Alcotest.fail e)

(* --- Whole-system determinism --- *)

let test_system_run_is_deterministic () =
  let run () =
    let c =
      Workloads.Figures.run_cell ~seed:0xD37E2L ~mode:System.Disk_audit ~drivers:2
        ~inserts_per_txn:8 ~records_per_driver:120 ()
    in
    let r = c.Workloads.Figures.result in
    (r.Workloads.Hot_stock.elapsed, r.Workloads.Hot_stock.response.Simkit.Stat.mean,
     r.Workloads.Hot_stock.audit_bytes)
  in
  let a = run () in
  let b = run () in
  check_bool "bit-identical reruns" true (a = b)

(* --- Mixed workloads on one system --- *)

let test_mixed_workloads_coexist () =
  (* Telco ingest and banking share the node concurrently; both finish
     with their own rows intact. *)
  let sim = Sim.create ~seed:0x31EDL () in
  let out = ref None in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let system = System.build sim System.default_config in
        let node = System.node system in
        let g = Gate.create 2 in
        let telco = ref None and bank = ref None in
        ignore
          (Nsk.Cpu.spawn (Nsk.Node.cpu node 0) ~name:"telco" (fun () ->
               telco :=
                 Some
                   (Workloads.Telco_cdr.run system
                      { Workloads.Telco_cdr.switches = 2; cdrs_per_switch = 40; cdr_bytes = 256;
                        cdrs_per_txn = 2; fraud_readers = 1;
                        arrival = Workloads.Telco_cdr.Closed });
               Gate.arrive g));
        ignore
          (Nsk.Cpu.spawn (Nsk.Node.cpu node 1) ~name:"bank" (fun () ->
               bank :=
                 Some
                   (Workloads.Bank.run system
                      { Workloads.Bank.clients = 2; txns_per_client = 20; branches = 2;
                        tellers_per_branch = 4; accounts = 400; row_bytes = 128 });
               Gate.arrive g));
        Gate.await g;
        out := Some (!telco, !bank))
  in
  Sim.run sim;
  match !out with
  | Some (Some t, Some b) ->
      check_int "telco all in" 80 t.Workloads.Telco_cdr.cdrs_inserted;
      check_int "bank all committed" 40 b.Workloads.Bank.committed
  | _ -> Alcotest.fail "mixed run incomplete"

let extras_cases =
  [
    Alcotest.test_case "trail trim archives the durable prefix" `Quick test_trim_durable_prefix;
    Alcotest.test_case "system runs are deterministic" `Quick test_system_run_is_deterministic;
    Alcotest.test_case "mixed workloads coexist" `Quick test_mixed_workloads_coexist;
  ]

let suite = suite @ [ ("tp.extras", extras_cases) ]

(* --- Distributed transactions (two-phase commit) --- *)

let small_pm_cluster_cfg =
  { System.pm_config with System.pm_capacity = 8 * 1024 * 1024; pm_region_bytes = 1024 * 1024 }

let in_cluster ?(cfg = System.default_config) ?(wan = Time.us 200) ~seed f =
  let sim = Sim.create ~seed () in
  let out = ref None in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let cluster = Cluster.build sim ~nodes:2 ~wan_latency:wan cfg in
        out := Some (f cluster))
  in
  Sim.run sim;
  match !out with Some v -> v | None -> Alcotest.fail "cluster run incomplete"

let test_dtx_commits_on_both_nodes () =
  in_cluster ~seed:0xD7C1L (fun cluster ->
      let dtx = Dtx.begin_dtx cluster ~coordinator:0 ~cpu:2 in
      (* A funds transfer: debit on node 0, credit on node 1. *)
      Test_util.check_result_ok "debit" (Dtx.insert dtx ~node:0 ~file:0 ~key:100 ~len:64);
      Test_util.check_result_ok "credit" (Dtx.insert dtx ~node:1 ~file:0 ~key:200 ~len:64);
      Alcotest.(check (list int)) "branches" [ 0; 1 ] (Dtx.branches dtx);
      Test_util.check_result_ok "2pc commit" (Dtx.commit dtx);
      Sim.sleep (Time.ms 100);
      let rows n =
        Array.fold_left (fun acc d -> acc + Dp2.table_size d) 0
          (System.dp2s (Cluster.system cluster n))
      in
      check_int "node 0 row" 1 (rows 0);
      check_int "node 1 row" 1 (rows 1);
      (* Every monitor has resolved its branch. *)
      check_int "no prepared left on 0" 0
        (List.length (Tmf.prepared_txns (System.tmf (Cluster.system cluster 0))));
      check_int "no prepared left on 1" 0
        (List.length (Tmf.prepared_txns (System.tmf (Cluster.system cluster 1)))))

let test_dtx_abort_undoes_everywhere () =
  in_cluster ~seed:0xD7C2L (fun cluster ->
      let dtx = Dtx.begin_dtx cluster ~coordinator:0 ~cpu:2 in
      Test_util.check_result_ok "w0" (Dtx.insert dtx ~node:0 ~file:1 ~key:7 ~len:64);
      Test_util.check_result_ok "w1" (Dtx.insert dtx ~node:1 ~file:1 ~key:8 ~len:64);
      Test_util.check_result_ok "abort" (Dtx.abort dtx);
      Sim.sleep (Time.ms 100);
      let rows n =
        Array.fold_left (fun acc d -> acc + Dp2.table_size d) 0
          (System.dp2s (Cluster.system cluster n))
      in
      check_int "node 0 clean" 0 (rows 0);
      check_int "node 1 clean" 0 (rows 1))

let test_dtx_single_branch_short_circuits () =
  in_cluster ~seed:0xD7C3L (fun cluster ->
      let dtx = Dtx.begin_dtx cluster ~coordinator:0 ~cpu:2 in
      Test_util.check_result_ok "local only" (Dtx.insert dtx ~node:0 ~file:0 ~key:1 ~len:64);
      Test_util.check_result_ok "1pc" (Dtx.commit dtx);
      (* No PREPARED record should exist in node 0's master trail. *)
      let mat = System.mat (Cluster.system cluster 0) in
      match Log_backend.recovery_read (Adp.backend mat) with
      | Ok records ->
          check_bool "no prepared record" true
            (List.for_all
               (fun (_, r) -> match r with Audit.Prepared _ -> false | _ -> true)
               records)
      | Error e -> Alcotest.fail e)

let test_dtx_in_doubt_after_crash () =
  (* Crash the cluster between prepare and decide: recovery on the
     participant reports the branch in doubt and discards its updates
     (presumed abort). *)
  in_cluster ~seed:0xD7C4L (fun cluster ->
      let node1 = Cluster.system cluster 1 in
      let session = Cluster.remote_session cluster ~from_node:0 ~target:1 ~cpu:2 in
      let txn = Test_util.ok_or_fail ~msg:"begin" (Txclient.begin_txn session) in
      Test_util.check_result_ok "insert" (Txclient.insert session txn ~file:0 ~key:9 ~len:64 ());
      Test_util.check_result_ok "prepare" (Txclient.prepare session txn);
      check_int "one prepared" 1 (List.length (Tmf.prepared_txns (System.tmf node1)));
      (* The coordinator dies here; node 1 recovers alone. *)
      Array.iter (fun d -> Dp2.load_table d []) (System.dp2s node1);
      match Recovery.run node1 with
      | Ok report ->
          check_int "in doubt" 1 report.Recovery.in_doubt_txns;
          check_int "update discarded" 1 report.Recovery.discarded_updates;
          check_int "nothing rebuilt" 0 report.Recovery.rows_rebuilt
      | Error e -> Alcotest.fail e)

let test_dtx_pm_much_faster () =
  let rt cfg =
    in_cluster ~cfg ~seed:0xD7C5L (fun cluster ->
        let sim = System.sim (Cluster.system cluster 0) in
        (* Warm one transfer, then time one. *)
        let transfer key =
          let dtx = Dtx.begin_dtx cluster ~coordinator:0 ~cpu:2 in
          Test_util.check_result_ok "debit" (Dtx.insert dtx ~node:0 ~file:0 ~key ~len:64);
          Test_util.check_result_ok "credit" (Dtx.insert dtx ~node:1 ~file:0 ~key ~len:64);
          Test_util.check_result_ok "commit" (Dtx.commit dtx)
        in
        transfer 1;
        let t0 = Sim.now sim in
        transfer 2;
        Sim.now sim - t0)
  in
  let disk = rt System.default_config in
  let pm = rt small_pm_cluster_cfg in
  check_bool
    (Printf.sprintf "2PC benefits doubly from PM (disk %s, pm %s)" (Time.to_string disk)
       (Time.to_string pm))
    true
    (pm * 3 < disk)

let dtx_cases =
  [
    Alcotest.test_case "transfer commits on both nodes" `Quick test_dtx_commits_on_both_nodes;
    Alcotest.test_case "abort undoes everywhere" `Quick test_dtx_abort_undoes_everywhere;
    Alcotest.test_case "single branch is one-phase" `Quick test_dtx_single_branch_short_circuits;
    Alcotest.test_case "in-doubt branch after crash" `Quick test_dtx_in_doubt_after_crash;
    Alcotest.test_case "PM compounds across 2PC" `Quick test_dtx_pm_much_faster;
  ]

let suite = suite @ [ ("tp.dtx", dtx_cases) ]

(* --- Drills: seeded deterministic fault schedules under load ---

   One drill per kill target; each runs the hot-stock mix while the
   plan fires, crashes, recovers, and asserts the zero-loss invariant:
   every acknowledged commit survives.  Plans are explicit and the seed
   fixed, so a failure here replays bit-for-bit. *)

let run_drill ?(seed = 0xD211L) ~mode plan =
  match Drill.run ~seed ~mode ~plan () with
  | Ok report -> report
  | Error e -> Alcotest.fail ("drill: " ^ e)

let assert_zero_loss r =
  check_bool
    (Printf.sprintf "zero loss (%d acked rows, %d lost)" r.Drill.acked_rows r.Drill.lost_rows)
    true (Drill.zero_loss r);
  check_bool
    (Printf.sprintf "made progress (%d committed)" r.Drill.committed)
    true
    (r.Drill.committed > 0)

let test_drill_adp_kills () =
  let r =
    run_drill ~mode:System.Disk_audit
      Faultplan.
        [
          at (Time.ms 300) (Kill_primary (Adp 1));
          at (Time.ms 900) (Kill_primary (Adp 2));
        ]
  in
  assert_zero_loss r;
  check_bool
    (Printf.sprintf "ADP takeovers (%d)" r.Drill.availability.Drill.adp_takeovers)
    true
    (r.Drill.availability.Drill.adp_takeovers >= 2)

let test_drill_dp2_kills () =
  let r =
    run_drill ~mode:System.Disk_audit
      Faultplan.
        [
          at (Time.ms 300) (Kill_primary (Dp2 3));
          at (Time.ms 800) (Kill_primary (Dp2 7));
          at (Time.ms 1_300) (Kill_primary (Dp2 11));
        ]
  in
  assert_zero_loss r;
  check_bool
    (Printf.sprintf "DP2 takeovers (%d)" r.Drill.availability.Drill.dp2_takeovers)
    true
    (r.Drill.availability.Drill.dp2_takeovers >= 3)

let test_drill_tmf_kill () =
  let r =
    run_drill ~mode:System.Disk_audit Faultplan.[ at (Time.ms 800) (Kill_primary Tmf) ]
  in
  assert_zero_loss r;
  check_int "TMF takeover" 1 r.Drill.availability.Drill.tmf_takeovers

let test_drill_pmm_kill () =
  let r = run_drill ~mode:System.Pm_audit Faultplan.[ at (Time.ms 20) (Kill_primary Pmm) ] in
  assert_zero_loss r;
  check_int "PMM takeover" 1 r.Drill.availability.Drill.pmm_takeovers;
  check_bool "recovery read outcomes from PM" true
    (r.Drill.recovery.Recovery.outcome_source = Recovery.Pm_txn_table)

let test_drill_standard_pm_deterministic () =
  (* The full standard schedule, twice with one seed: identical reports. *)
  let plan = Drill.standard_plan System.Pm_audit in
  let a = run_drill ~mode:System.Pm_audit plan in
  let b = run_drill ~mode:System.Pm_audit plan in
  assert_zero_loss a;
  check_bool "faults injected" true (List.length a.Drill.faults >= 5);
  check_int "committed deterministic" a.Drill.committed b.Drill.committed;
  check_int "acked rows deterministic" a.Drill.acked_rows b.Drill.acked_rows;
  check_int "degraded writes deterministic" a.Drill.availability.Drill.degraded_writes
    b.Drill.availability.Drill.degraded_writes;
  check_bool "elapsed deterministic" true (a.Drill.elapsed = b.Drill.elapsed);
  check_bool "fault log deterministic" true (a.Drill.faults = b.Drill.faults)

let test_drill_plan_validation () =
  (* PM-only events are rejected against a disk-mode system, out-of-range
     targets against any. *)
  (match
     Drill.run ~mode:System.Disk_audit ~plan:Faultplan.[ at 0 (Kill_primary Pmm) ] ()
   with
  | Error e -> check_bool "pm-only rejected" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "kill_pmm accepted in disk mode");
  match
    Drill.run ~mode:System.Disk_audit ~plan:Faultplan.[ at 0 (Kill_primary (Adp 99)) ] ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range ADP accepted"

let drill_cases =
  [
    Alcotest.test_case "ADP kills, zero loss" `Slow test_drill_adp_kills;
    Alcotest.test_case "DP2 kills, zero loss" `Slow test_drill_dp2_kills;
    Alcotest.test_case "TMF kill, zero loss" `Slow test_drill_tmf_kill;
    Alcotest.test_case "PMM kill, zero loss" `Quick test_drill_pmm_kill;
    Alcotest.test_case "standard PM drill is deterministic" `Quick
      test_drill_standard_pm_deterministic;
    Alcotest.test_case "plans are validated" `Quick test_drill_plan_validation;
  ]

let suite = suite @ [ ("tp.drill", drill_cases) ]

(* --- Dtx locked reads --- *)

let test_dtx_read_across_nodes () =
  in_cluster ~seed:0xD7C6L (fun cluster ->
      (* Seed a row on node 1, then a distributed txn reads it while
         inserting on node 0. *)
      let s1 = Cluster.local_session cluster ~node:1 ~cpu:2 in
      let t = Test_util.ok_or_fail ~msg:"seed begin" (Txclient.begin_txn s1) in
      Test_util.check_result_ok "seed insert" (Txclient.insert s1 t ~file:0 ~key:77 ~len:321 ());
      Test_util.check_result_ok "seed commit" (Txclient.commit s1 t);
      Sim.sleep (Time.ms 50);
      let dtx = Dtx.begin_dtx cluster ~coordinator:0 ~cpu:3 in
      (match Dtx.read dtx ~node:1 ~file:0 ~key:77 with
      | Ok (Some (321, _)) -> ()
      | Ok _ -> Alcotest.fail "wrong read"
      | Error e -> Alcotest.fail (Txclient.error_to_string e));
      Test_util.check_result_ok "write node0" (Dtx.insert dtx ~node:0 ~file:0 ~key:78 ~len:64);
      Test_util.check_result_ok "2pc" (Dtx.commit dtx))

let dtx_read_cases =
  [ Alcotest.test_case "locked read across nodes" `Quick test_dtx_read_across_nodes ]

let suite = suite @ [ ("tp.dtx_read", dtx_read_cases) ]

(* --- Partition tolerance: severed links, in-doubt resolution, fencing --- *)

let test_partition_severs_and_heals () =
  in_cluster ~seed:0xF7A1L (fun cluster ->
      let s1 = Cluster.remote_session cluster ~from_node:0 ~target:1 ~cpu:2 in
      Cluster.partition cluster;
      check_bool "link reported down" false (Cluster.wan_is_up cluster);
      (match Txclient.begin_txn s1 with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "call crossed a severed link");
      Cluster.heal cluster;
      check_bool "link reported up" true (Cluster.wan_is_up cluster);
      let t = Test_util.ok_or_fail ~msg:"begin after heal" (Txclient.begin_txn s1) in
      Test_util.check_result_ok "insert after heal"
        (Txclient.insert s1 t ~file:0 ~key:5 ~len:64 ());
      Test_util.check_result_ok "commit after heal" (Txclient.commit s1 t))

let test_resolver_drains_in_doubt_window () =
  (* Two branches stranded prepared on node 1 — their coordinator on
     node 0 decided commit for one and abort for the other, but the
     decides never arrived.  Recovery must ask the coordinator, commit
     the first, abort the second, empty the prepared window, and release
     every lock. *)
  in_cluster ~seed:0xF7A2L (fun cluster ->
      let node1 = Cluster.system cluster 1 in
      let s0 = Cluster.local_session cluster ~node:0 ~cpu:2 in
      (* Coordinator branch A: prepared then durably committed. *)
      let ta = Test_util.ok_or_fail ~msg:"begin A" (Txclient.begin_txn s0) in
      Test_util.check_result_ok "insert A" (Txclient.insert s0 ta ~file:0 ~key:1 ~len:64 ());
      Test_util.check_result_ok "prepare A" (Txclient.prepare s0 ta);
      Test_util.check_result_ok "decide A" (Txclient.decide s0 ta ~commit:true);
      (* Coordinator branch B: prepared then aborted. *)
      let tb = Test_util.ok_or_fail ~msg:"begin B" (Txclient.begin_txn s0) in
      Test_util.check_result_ok "insert B" (Txclient.insert s0 tb ~file:0 ~key:2 ~len:64 ());
      Test_util.check_result_ok "prepare B" (Txclient.prepare s0 tb);
      Test_util.check_result_ok "decide B" (Txclient.decide s0 tb ~commit:false);
      (* Node 1's branches prepare under those global identities; the
         partition eats both phase-2 decides. *)
      let s1 = Cluster.remote_session cluster ~from_node:0 ~target:1 ~cpu:2 in
      let b1 = Test_util.ok_or_fail ~msg:"begin b1" (Txclient.begin_txn s1) in
      Test_util.check_result_ok "insert b1" (Txclient.insert s1 b1 ~file:0 ~key:11 ~len:64 ());
      Test_util.check_result_ok "prepare b1"
        (Txclient.prepare ~gtid:(0, Txclient.txn_id ta) s1 b1);
      let b2 = Test_util.ok_or_fail ~msg:"begin b2" (Txclient.begin_txn s1) in
      Test_util.check_result_ok "insert b2" (Txclient.insert s1 b2 ~file:0 ~key:12 ~len:64 ());
      Test_util.check_result_ok "prepare b2"
        (Txclient.prepare ~gtid:(0, Txclient.txn_id tb) s1 b2);
      Sim.sleep (Time.ms 50);
      check_int "two branches in doubt" 2 (List.length (Tmf.in_doubt (System.tmf node1)));
      check_int "prepared window populated" 2
        (List.length (Tmf.prepared_txns (System.tmf node1)));
      check_bool "locks held under the in-doubt branches" true
        (Lockmgr.held_total (System.locks node1) > 0);
      (* Node 1 crashes; cluster recovery resolves against node 0. *)
      Array.iter (fun d -> Dp2.load_table d []) (System.dp2s node1);
      (match Cluster.recover cluster with
      | Error e -> Alcotest.fail ("recover: " ^ e)
      | Ok reports ->
          let r1 = List.nth reports 1 in
          check_int "resolved to commit" 1 r1.Recovery.resolved_commit;
          check_int "resolved to abort" 1 r1.Recovery.resolved_abort);
      (* Lock release rides the monitor's finish queue. *)
      Sim.sleep (Time.ms 100);
      check_int "in-doubt window empty" 0 (List.length (Tmf.in_doubt (System.tmf node1)));
      check_int "prepared window empty" 0
        (List.length (Tmf.prepared_txns (System.tmf node1)));
      check_int "no orphaned locks" 0 (Lockmgr.held_total (System.locks node1));
      (* The committed branch's row survived the crash; the aborted one
         is gone. *)
      let lookup key =
        let routing = System.routing node1 in
        let d = (System.dp2s node1).(routing.Txclient.dp2_of ~file:0 ~key) in
        Dp2.lookup_direct d ~file:0 ~key
      in
      check_bool "resolved-commit row rebuilt" true (lookup 11 <> None);
      check_bool "resolved-abort row discarded" true (lookup 12 = None))

let test_resolver_presumes_abort_when_unreachable () =
  (* The coordinator is still unreachable when the participant recovers:
     every in-doubt branch resolves to abort (presumed abort), so locks
     release and the window empties even without an answer. *)
  in_cluster ~seed:0xF7A3L (fun cluster ->
      let node1 = Cluster.system cluster 1 in
      let s0 = Cluster.local_session cluster ~node:0 ~cpu:2 in
      let ta = Test_util.ok_or_fail ~msg:"begin A" (Txclient.begin_txn s0) in
      Test_util.check_result_ok "insert A" (Txclient.insert s0 ta ~file:0 ~key:1 ~len:64 ());
      Test_util.check_result_ok "prepare A" (Txclient.prepare s0 ta);
      Test_util.check_result_ok "decide A" (Txclient.decide s0 ta ~commit:true);
      let s1 = Cluster.remote_session cluster ~from_node:0 ~target:1 ~cpu:2 in
      let b1 = Test_util.ok_or_fail ~msg:"begin b1" (Txclient.begin_txn s1) in
      Test_util.check_result_ok "insert b1" (Txclient.insert s1 b1 ~file:0 ~key:21 ~len:64 ());
      Test_util.check_result_ok "prepare b1"
        (Txclient.prepare ~gtid:(0, Txclient.txn_id ta) s1 b1);
      Sim.sleep (Time.ms 50);
      Cluster.partition cluster;
      Array.iter (fun d -> Dp2.load_table d []) (System.dp2s node1);
      (match Recovery.run node1 with
      | Error e -> Alcotest.fail ("recover: " ^ e)
      | Ok r ->
          check_int "presumed abort" 1 r.Recovery.resolved_abort;
          check_int "nothing resolved to commit" 0 r.Recovery.resolved_commit);
      Sim.sleep (Time.ms 100);
      check_int "window drained" 0 (List.length (Tmf.in_doubt (System.tmf node1)));
      check_int "locks released" 0 (Lockmgr.held_total (System.locks node1)))

let test_faultplan_resync_fails_across_power_cycle () =
  (* Regression: a resync that straddles a destination power cycle must
     report failure and leave the volume degraded — the copy's early
     chunks predate the cycle, so acking it would declare a half-stale
     mirror clean.  The resync injection blocks its own scheduler for
     the copy's duration, so the power cycle rides a second plan to
     land inside the window. *)
  let contains s sub =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  build_small `Pm (fun system ->
      let resync = Faultplan.launch system Faultplan.[ at (Time.ms 10) Pmm_resync ] in
      let cycle =
        Faultplan.launch system
          Faultplan.[ at (Time.ms 12) (Npmu_power_cycle { device = 1; off_for = Time.ms 1 }) ]
      in
      Faultplan.await resync;
      Faultplan.await cycle;
      let log = List.map snd (Faultplan.injected resync) in
      check_bool "resync reported the power cycle" true
        (List.exists (fun d -> contains d "resync" && contains d "failed") log);
      match System.pmm system with
      | Some pmm -> check_bool "volume left degraded" true (Pm.Pmm.degraded pmm)
      | None -> Alcotest.fail "PM system has no PMM")

let test_partition_plan_validation () =
  (* WAN events need a cluster-scoped launch; the fence probe needs PM. *)
  (match Drill.run ~mode:System.Pm_audit ~plan:Faultplan.[ at 0 Wan_partition ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wan_partition accepted outside a cluster");
  match Drill.run ~mode:System.Disk_audit ~plan:Faultplan.[ at 0 Fence_check ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fence_check accepted in disk mode"

let test_cluster_partition_drill_seeds () =
  List.iter
    (fun seed ->
      match Drill.run_cluster ~seed ~plan:Drill.partition_plan () with
      | Error e -> Alcotest.fail (Printf.sprintf "drill seed 0x%Lx: %s" seed e)
      | Ok r ->
          check_bool
            (Printf.sprintf
               "seed 0x%Lx invariants (lost=%d in-doubt=%d locks=%d fence-failures=%d)"
               seed r.Drill.c_lost_rows r.Drill.c_in_doubt_after r.Drill.c_orphaned_locks
               r.Drill.c_fence_failures)
            true (Drill.cluster_zero_loss r);
          check_bool "made progress" true (r.Drill.c_committed > 0);
          check_bool "partition stranded branches" true (r.Drill.c_in_doubt_before > 0);
          check_int "every stranded branch resolved" r.Drill.c_in_doubt_before
            (r.Drill.c_resolved_commit + r.Drill.c_resolved_abort);
          check_int "fence probed" 1 r.Drill.c_fence_checks;
          check_bool "stale writes fenced" true (r.Drill.c_fenced_writes > 0))
    [ 0x7L; 0x2AL; 0xBEEFL ]

let partition_cases =
  [
    Alcotest.test_case "severed link times out, heals clean" `Quick
      test_partition_severs_and_heals;
    Alcotest.test_case "resolver drains the in-doubt window" `Quick
      test_resolver_drains_in_doubt_window;
    Alcotest.test_case "unreachable coordinator presumes abort" `Quick
      test_resolver_presumes_abort_when_unreachable;
    Alcotest.test_case "WAN and fence events are validated" `Quick
      test_partition_plan_validation;
    Alcotest.test_case "resync straddling a power cycle fails degraded" `Quick
      test_faultplan_resync_fails_across_power_cycle;
    Alcotest.test_case "partition drill: three seeds, zero loss" `Slow
      test_cluster_partition_drill_seeds;
  ]

let suite = suite @ [ ("tp.partition", partition_cases) ]
