(* Tests for the continuous-telemetry layer: probe accounting, the
   time-series sampler's delta math, ring bounds, replay determinism,
   the bottleneck-attribution report, and the Json/CSV escaping the
   exports rely on. *)

open Simkit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- Probe: busy/depth accounting under a manual clock --- *)

let test_probe_accounting () =
  let now = ref 0 in
  let p = Probe.create ~clock:(fun () -> !now) ~name:"r" () in
  Probe.enqueue p;
  now := 100;
  Probe.enqueue p;
  (* one resident item for 100 ns *)
  now := 300;
  Probe.dequeue p;
  (* plus two resident for 200 ns *)
  Probe.busy_span p 150;
  Probe.busy_span p (-5);
  (* ignored *)
  Probe.dequeue p;
  Probe.dequeue p;
  (* floored: depth never goes negative *)
  check_int "depth floored at zero" 0 (Probe.depth p);
  check_int "max depth" 2 (Probe.max_depth p);
  check_int "enqueued" 2 (Probe.enqueued p);
  check_int "dequeued counts strays" 3 (Probe.dequeued p);
  check_int "busy ignores non-positive" 150 (Probe.busy_total p);
  check_float "integral = 1*100 + 2*200" 500.0 (Probe.depth_integral ~at:400 p);
  (* depth is 0, so reading later adds nothing *)
  check_float "integral pure at depth 0" 500.0 (Probe.depth_integral ~at:1_000 p)

let test_probe_clock_attach_resets_epoch () =
  let now = ref 0 in
  let p = Probe.create ~name:"late" () in
  Probe.enqueue p;
  now := 1_000;
  (* attaching the clock must not retroactively charge [0,1000) *)
  Probe.set_clock p (fun () -> !now);
  now := 1_500;
  check_float "integral counts only the clocked era" 500.0 (Probe.depth_integral p)

(* --- Timeseries: counter deltas and rates --- *)

let test_counter_delta_rate () =
  let sim = Sim.create ~seed:1L () in
  let m = Metrics.create () in
  let c = Metrics.counter m "work.ops" in
  let ts = Timeseries.create ~sim ~metrics:m ~interval:(Time.ms 10) () in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"worker" (fun () ->
        Timeseries.start ts;
        for _ = 1 to 3 do
          Sim.sleep (Time.ms 4);
          Stat.Counter.add c 3;
          Sim.sleep (Time.ms 6)
        done;
        Timeseries.stop ts)
  in
  Sim.run sim;
  let samples = Timeseries.samples ts in
  check_int "one sample per interval" 3 (List.length samples);
  List.iter
    (fun s ->
      check_int "interval length" (Time.ms 10) s.Timeseries.s_dt;
      check_float "delta is per-interval" 3.0
        (List.assoc "work.ops.delta" s.Timeseries.s_values);
      check_float "rate is per-second" 300.0
        (List.assoc "work.ops.rate" s.Timeseries.s_values))
    samples

(* --- Timeseries: stat columns describe only the interval slice --- *)

let test_stat_interval_slice () =
  let sim = Sim.create ~seed:1L () in
  let m = Metrics.create () in
  let st = Metrics.stat m "lat" in
  let ts = Timeseries.create ~sim ~metrics:m ~interval:(Time.ms 10) () in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"worker" (fun () ->
        Timeseries.start ts;
        Sim.sleep (Time.ms 1);
        Stat.add st 10.0;
        Stat.add st 20.0;
        Stat.add st 30.0;
        Sim.sleep (Time.ms 11);
        Stat.add st 100.0;
        Sim.sleep (Time.ms 3);
        Timeseries.stop ts)
  in
  Sim.run sim;
  match Timeseries.samples ts with
  | [ s1; s2 ] ->
      let v s k = List.assoc k s.Timeseries.s_values in
      check_float "first interval n" 3.0 (v s1 "lat.n");
      check_float "first interval mean" 20.0 (v s1 "lat.mean");
      check_float "first interval p50" 20.0 (v s1 "lat.p50");
      check_float "first interval p99" 30.0 (v s1 "lat.p99");
      check_float "second interval n" 1.0 (v s2 "lat.n");
      check_float "second interval mean excludes old samples" 100.0 (v s2 "lat.mean");
      check_float "second interval p50" 100.0 (v s2 "lat.p50")
  | l -> Alcotest.failf "expected 2 samples, got %d" (List.length l)

(* --- Timeseries: probe utilization columns --- *)

let test_probe_utilization_columns () =
  let sim = Sim.create ~seed:1L () in
  let m = Metrics.create () in
  let p = Metrics.probe m "res" in
  Probe.set_clock p (fun () -> Sim.now sim);
  let ts = Timeseries.create ~sim ~metrics:m ~interval:(Time.ms 10) () in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"worker" (fun () ->
        Timeseries.start ts;
        (* busy for 4 of the 10 ms, one resident item for 6 of them *)
        Probe.enqueue p;
        Sim.sleep (Time.ms 6);
        Probe.busy_span p (Time.ms 4);
        Probe.dequeue p;
        Sim.sleep (Time.ms 4);
        Timeseries.stop ts)
  in
  Sim.run sim;
  match Timeseries.samples ts with
  | [ s ] ->
      let v k = List.assoc k s.Timeseries.s_values in
      check_float "utilization" 0.4 (v "res.util");
      check_float "mean queue length" 0.6 (v "res.qlen");
      check_float "depth at sample time" 0.0 (v "res.depth");
      check_float "completion rate" 100.0 (v "res.rate");
      (* and the attribution report agrees *)
      (match Timeseries.attribution ts with
      | [ a ] ->
          check_string "resource" "res" a.Timeseries.at_resource;
          check_float "attributed util" 0.4 a.Timeseries.at_utilization;
          check_float "attributed qlen" 0.6 a.Timeseries.at_qlen;
          check_float "only probe takes full share" 1.0 a.Timeseries.at_busy_share
      | l -> Alcotest.failf "expected 1 attribution row, got %d" (List.length l))
  | l -> Alcotest.failf "expected 1 sample, got %d" (List.length l)

(* --- Timeseries: ring bound and eviction --- *)

let test_ring_eviction () =
  let sim = Sim.create ~seed:1L () in
  let m = Metrics.create () in
  let n = ref 0 in
  Metrics.register_gauge m "g" (fun () -> float_of_int !n);
  let ts = Timeseries.create ~capacity:3 ~sim ~metrics:m ~interval:(Time.ms 1) () in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"worker" (fun () ->
        Timeseries.start ts;
        for i = 1 to 6 do
          Sim.sleep (Time.ms 1);
          n := i
        done;
        Sim.sleep (Time.us 500);
        Timeseries.stop ts)
  in
  Sim.run sim;
  (* 6 ticks + the final stop sample, minus what the ring dropped *)
  check_int "ring keeps capacity" 3 (Timeseries.sample_count ts);
  check_int "evicted counted" 4 (Timeseries.evicted ts);
  match Timeseries.samples ts with
  | [ s5; s6; s7 ] ->
      check_int "oldest retained is t=5ms" (Time.ms 5) s5.Timeseries.s_time;
      check_int "then t=6ms" (Time.ms 6) s6.Timeseries.s_time;
      check_int "final stop sample" (Time.ms 6 + Time.us 500) s7.Timeseries.s_time;
      check_float "gauge read as-is" 6.0 (List.assoc "g" s7.Timeseries.s_values)
  | _ -> Alcotest.fail "expected exactly 3 retained samples"

let test_create_validates () =
  let sim = Sim.create ~seed:1L () in
  let m = Metrics.create () in
  let raises f = match f () with (_ : Timeseries.t) -> false | exception Invalid_argument _ -> true in
  check_bool "zero interval rejected" true
    (raises (fun () -> Timeseries.create ~sim ~metrics:m ~interval:0 ()));
  check_bool "zero capacity rejected" true
    (raises (fun () -> Timeseries.create ~capacity:0 ~sim ~metrics:m ~interval:1 ()))

(* --- CSV export: header, marks, RFC-4180 quoting --- *)

let test_csv_marks_and_quoting () =
  let sim = Sim.create ~seed:1L () in
  let m = Metrics.create () in
  Metrics.register_gauge m "plain" (fun () -> 1.5);
  Metrics.register_gauge m "odd,\"name\"" (fun () -> 2.0);
  let ts = Timeseries.create ~sim ~metrics:m ~interval:(Time.ms 1) () in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"worker" (fun () ->
        Timeseries.start ts;
        Sim.sleep (Time.ms 1);
        Timeseries.stop ts)
  in
  Sim.run sim;
  Timeseries.mark ts ~time:(Time.us 500) "kill, \"primary\"";
  let csv = Timeseries.to_csv ts in
  check_bool "mark line quoted" true
    (contains csv "# mark,500000,\"kill, \"\"primary\"\"\"");
  check_bool "header quotes odd column" true
    (contains csv "time_ns,dt_ns,\"odd,\"\"name\"\"\",plain");
  check_bool "row present" true (contains csv "1000000,1000000,2,1.5")

(* --- Determinism: same seed, same series --- *)

let sampled_disk_cell () =
  let obs = Obs.create () in
  let c, ts =
    Workloads.Figures.run_cell_sampled ~obs ~sample_interval:(Time.ms 10)
      ~mode:Tp.System.Disk_audit ~drivers:1 ~inserts_per_txn:4 ~records_per_driver:60 ()
  in
  match ts with
  | Some t -> (c, t)
  | None -> Alcotest.fail "sampler missing despite sample_interval"

let test_replay_determinism () =
  let _, t1 = sampled_disk_cell () in
  let _, t2 = sampled_disk_cell () in
  let csv1 = Timeseries.to_csv t1 and csv2 = Timeseries.to_csv t2 in
  check_bool "series is non-trivial" true (String.length csv1 > 1_000);
  check_bool "same seed, byte-identical series" true (csv1 = csv2)

(* --- Sampling must not perturb the workload --- *)

let test_sampler_is_read_only () =
  let base =
    let obs = Obs.create () in
    Workloads.Figures.run_cell ~obs ~mode:Tp.System.Disk_audit ~drivers:1
      ~inserts_per_txn:4 ~records_per_driver:60 ()
  in
  let sampled, _ = sampled_disk_cell () in
  let b = base.Workloads.Figures.result and s = sampled.Workloads.Figures.result in
  check_int "same elapsed" b.Workloads.Hot_stock.elapsed s.Workloads.Hot_stock.elapsed;
  check_int "same commits" b.Workloads.Hot_stock.committed s.Workloads.Hot_stock.committed;
  check_int "same audit bytes" b.Workloads.Hot_stock.audit_bytes
    s.Workloads.Hot_stock.audit_bytes;
  check_bool "same mean response" true
    (b.Workloads.Hot_stock.response.Stat.mean = s.Workloads.Hot_stock.response.Stat.mean)

(* --- End to end: the attribution report finds the paper's bottleneck --- *)

let layer_prefixes = [ "msgsys."; "fabric."; "vol."; "cpu."; "adp."; "tmf." ]

let test_disk_mode_bottleneck_is_audit_volume () =
  let _, ts = sampled_disk_cell () in
  let cols = Timeseries.paths ts in
  List.iter
    (fun pfx ->
      check_bool ("columns cover " ^ pfx) true
        (List.exists (fun c -> String.length c >= String.length pfx
                               && String.sub c 0 (String.length pfx) = pfx) cols))
    layer_prefixes;
  match Timeseries.attribution ts with
  | top :: _ ->
      check_bool
        ("disk mode bottleneck is an audit volume, got " ^ top.Timeseries.at_resource)
        true
        (String.length top.Timeseries.at_resource >= 10
        && String.sub top.Timeseries.at_resource 0 10 = "vol.$AUDIT")
  | [] -> Alcotest.fail "empty attribution report"

let test_pm_mode_bottleneck_is_not_audit_volume () =
  let obs = Obs.create () in
  let _, ts =
    Workloads.Figures.run_cell_sampled ~obs ~sample_interval:(Time.ms 10)
      ~mode:Tp.System.Pm_audit ~drivers:1 ~inserts_per_txn:4 ~records_per_driver:60 ()
  in
  let ts = match ts with Some t -> t | None -> Alcotest.fail "sampler missing" in
  let cols = Timeseries.paths ts in
  List.iter
    (fun pfx ->
      check_bool ("columns cover " ^ pfx) true
        (List.exists (fun c -> String.length c >= String.length pfx
                               && String.sub c 0 (String.length pfx) = pfx) cols))
    ("npmu." :: "pm." :: layer_prefixes);
  match Timeseries.attribution ts with
  | top :: _ ->
      check_bool
        ("PM mode bottleneck is not an audit volume, got " ^ top.Timeseries.at_resource)
        false
        (String.length top.Timeseries.at_resource >= 10
        && String.sub top.Timeseries.at_resource 0 10 = "vol.$AUDIT")
  | [] -> Alcotest.fail "empty attribution report"

(* --- Json escaping (the exports lean on it) --- *)

let test_json_escaping () =
  check_string "control and quote escapes"
    "\"a\\\"b\\\\c\\nd\\te\\r\\u0001\""
    (Json.to_string (Json.String "a\"b\\c\nd\te\r\x01"));
  check_string "object keys escaped too" "{\"k\\\"1\":1}"
    (Json.to_string (Json.Obj [ ("k\"1", Json.Int 1) ]));
  check_string "nan has no JSON literal" "null" (Json.to_string (Json.Float Float.nan));
  check_string "infinity has no JSON literal" "[null,null]"
    (Json.to_string (Json.List [ Json.Float Float.infinity; Json.Float Float.neg_infinity ]));
  check_string "integral floats stay exact" "1234567890" (Json.to_string (Json.Float 1234567890.0))

(* --- Histogram rendering helpers --- *)

let test_histogram_pp () =
  let h = Stat.Histogram.create () in
  check_int "empty total" 0 (Stat.Histogram.total h);
  check_bool "empty mode" true (Stat.Histogram.max_bucket h = None);
  check_string "empty renders" "empty" (Format.asprintf "%a" Stat.Histogram.pp h);
  Stat.Histogram.add h 2;
  Stat.Histogram.add h 2;
  Stat.Histogram.add h 1000;
  check_int "total" 3 (Stat.Histogram.total h);
  check_bool "mode is the fullest bucket" true
    (Stat.Histogram.max_bucket h = Some (4, 2));
  check_string "render" "n=3 mode<=4 (2) [4:2 1024:1]"
    (Format.asprintf "%a" Stat.Histogram.pp h);
  let tie = Stat.Histogram.create () in
  Stat.Histogram.add tie 2;
  Stat.Histogram.add tie 1000;
  check_bool "ties go to the smaller bucket" true
    (Stat.Histogram.max_bucket tie = Some (4, 1))

let suite =
  [
    ( "timeseries.probe",
      [
        Alcotest.test_case "busy/depth accounting" `Quick test_probe_accounting;
        Alcotest.test_case "late clock attach resets epoch" `Quick
          test_probe_clock_attach_resets_epoch;
      ] );
    ( "timeseries.sampler",
      [
        Alcotest.test_case "counter deltas and rates" `Quick test_counter_delta_rate;
        Alcotest.test_case "stat interval slices" `Quick test_stat_interval_slice;
        Alcotest.test_case "probe utilization columns" `Quick
          test_probe_utilization_columns;
        Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
        Alcotest.test_case "create validates" `Quick test_create_validates;
        Alcotest.test_case "csv marks and quoting" `Quick test_csv_marks_and_quoting;
      ] );
    ( "timeseries.end_to_end",
      [
        Alcotest.test_case "replay determinism" `Quick test_replay_determinism;
        Alcotest.test_case "sampler is read-only" `Quick test_sampler_is_read_only;
        Alcotest.test_case "disk bottleneck is the audit volume" `Quick
          test_disk_mode_bottleneck_is_audit_volume;
        Alcotest.test_case "pm bottleneck is not the audit volume" `Quick
          test_pm_mode_bottleneck_is_not_audit_volume;
      ] );
    ( "timeseries.rendering",
      [
        Alcotest.test_case "json escaping" `Quick test_json_escaping;
        Alcotest.test_case "histogram pp/total/max_bucket" `Quick test_histogram_pp;
      ] );
  ]
