(* Overload robustness: retry-budget and admission arithmetic
   properties, faultplan scoping of the flash-crowd marker, and the
   end-to-end metastable-failure drill with its negative control. *)

open Simkit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- Retry-budget token bucket: pure invariants --- *)

(* An op sequence drives the bucket; [true] spends, [false] credits. *)
let ops_arb = QCheck.(list_of_size Gen.(int_bound 200) bool)

let prop_budget_bounded =
  QCheck.Test.make ~name:"retry budget tokens stay in [0, capacity]" ~count:200
    QCheck.(triple (float_range 0.0 20.0) (float_range 0.0 2.0) ops_arb)
    (fun (capacity, refill, ops) ->
      let b = Retry_budget.create ~capacity ~refill () in
      List.for_all
        (fun spend ->
          if spend then ignore (Retry_budget.try_spend b) else Retry_budget.success b;
          Retry_budget.tokens b >= 0.0 && Retry_budget.tokens b <= Retry_budget.capacity b)
        ops)

let prop_budget_refill_monotone =
  QCheck.Test.make ~name:"retry budget refill never decreases tokens" ~count:200
    QCheck.(pair (float_range 0.0 20.0) ops_arb)
    (fun (capacity, ops) ->
      let b = Retry_budget.create ~capacity ~refill:0.25 () in
      List.iter
        (fun spend ->
          if spend then ignore (Retry_budget.try_spend b) else Retry_budget.success b)
        ops;
      let before = Retry_budget.tokens b in
      Retry_budget.success b;
      Retry_budget.tokens b >= before)

let prop_budget_exhaustion_denies =
  QCheck.Test.make ~name:"exhausted retry budget denies the spend" ~count:100
    QCheck.(int_range 0 30)
    (fun spends ->
      let b = Retry_budget.create ~capacity:5.0 ~refill:0.0 () in
      for _ = 1 to spends do
        ignore (Retry_budget.try_spend b)
      done;
      (* With no refill, at most [capacity] spends can ever succeed. *)
      Retry_budget.spent b <= 5 && Retry_budget.denied b = max 0 (spends - 5))

(* --- Admission arithmetic: never admit the already-expired --- *)

let prop_admits_never_expired =
  QCheck.Test.make ~name:"admission never admits an expired deadline" ~count:500
    QCheck.(triple (pair (int_bound 1_000_000) (int_range 1 1_000_000))
              (int_bound 64) (float_range 0.0 1e6))
    (fun ((deadline, past), queue, svc_ewma_ns) ->
      let deadline = deadline + 1 (* strictly positive: client opted in *) in
      let now = deadline + past - 1 (* now >= deadline *) in
      match Tp.Tmf.admits ~now ~deadline ~queue ~svc_ewma_ns with
      | `Expired -> true
      | `Admit | `Reject -> false)

let prop_admits_respects_wait_estimate =
  QCheck.Test.make ~name:"admission rejects when estimated wait overshoots" ~count:500
    QCheck.(quad (int_range 1 1_000_000) (int_range 1 1_000_000) (int_bound 64)
              (float_range 0.0 1e6))
    (fun (now, slack, queue, svc_ewma_ns) ->
      let deadline = now + slack in
      match Tp.Tmf.admits ~now ~deadline ~queue ~svc_ewma_ns with
      | `Expired -> false (* now < deadline: cannot be expired *)
      | `Admit -> float_of_int now +. (float_of_int queue *. svc_ewma_ns)
                  < float_of_int deadline
      | `Reject -> float_of_int now +. (float_of_int queue *. svc_ewma_ns)
                   >= float_of_int deadline)

(* --- Faultplan scoping of the flash-crowd marker --- *)

let test_flash_crowd_overload_only () =
  let sim = Sim.create ~seed:0x11L () in
  Test_util.run_in sim (fun () ->
      let system = Tp.System.build sim Tp.System.pm_config in
      let crowd = Tp.Faultplan.Flash_crowd { spike = 5.0; spike_for = Time.ms 400 } in
      let plan = [ Tp.Faultplan.at (Time.ms 1) crowd ] in
      (match Tp.Faultplan.validate system plan with
      | Ok () -> Alcotest.fail "flash_crowd accepted outside the overload drill"
      | Error e ->
          (* The rejection must steer to --plan overload and list the
             valid plan names, exactly as --list-plans would print them. *)
          check_bool "error names the overload plan" true (contains e "overload");
          List.iter
            (fun name ->
              check_bool (Printf.sprintf "error lists plan '%s'" name) true
                (contains e name))
            (Tp.Drill.plan_names Tp.System.Pm_audit));
      (match Tp.Faultplan.validate_overload system plan with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("overload scope rejected the marker: " ^ e));
      (match
         Tp.Faultplan.validate_overload system
           [ Tp.Faultplan.at (Time.ms 1)
               (Tp.Faultplan.Flash_crowd { spike = 0.5; spike_for = Time.ms 400 }) ]
       with
      | Ok () -> Alcotest.fail "sub-1x spike accepted"
      | Error _ -> ());
      match
        Tp.Faultplan.validate_overload system
          [ Tp.Faultplan.at (Time.ms 1)
              (Tp.Faultplan.Flash_crowd { spike = 5.0; spike_for = 0 }) ]
      with
      | Ok () -> Alcotest.fail "zero-length spike accepted"
      | Error _ -> ())

let test_overload_plan_validates () =
  let sim = Sim.create ~seed:0x12L () in
  Test_util.run_in sim (fun () ->
      let system = Tp.System.build sim Tp.Drill.overload_config in
      match
        Tp.Faultplan.validate_overload system
          (Tp.Drill.overload_plan Tp.Drill.overload_params)
      with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("overload plan rejected: " ^ e))

(* --- The end-to-end drill --- *)

let run_drill ?seed ?defenses () =
  match Tp.Drill.run_overload ?seed ?defenses () with
  | Error e -> Alcotest.fail ("overload drill failed to run: " ^ e)
  | Ok r -> r

let test_overload_drill_defended () =
  let r = run_drill () in
  check_int "zero acked rows lost" 0 r.Tp.Drill.v_lost_rows;
  check_bool "admission actually fired" true (r.Tp.Drill.v_rejected > 0);
  check_bool "spike goodput above the floor" true
    (r.Tp.Drill.v_spike_goodput
    >= r.Tp.Drill.v_spike_floor *. r.Tp.Drill.v_warmup_goodput);
  (match r.Tp.Drill.v_recovery_time with
  | Some t -> check_bool "recovery within the bound" true (t <= r.Tp.Drill.v_recovery_limit)
  | None -> Alcotest.fail "defended run never recovered");
  check_bool "gate bundle" true (Tp.Drill.overload_pass r);
  (* Bit-determinism: the same seed replays to the same report,
     including the whole goodput-over-time series. *)
  let r2 = run_drill () in
  check_int "same arrivals" r.Tp.Drill.v_arrivals r2.Tp.Drill.v_arrivals;
  check_int "same commits" r.Tp.Drill.v_committed r2.Tp.Drill.v_committed;
  check_int "same rejections" r.Tp.Drill.v_rejected r2.Tp.Drill.v_rejected;
  check_int "same timeouts" r.Tp.Drill.v_timeouts r2.Tp.Drill.v_timeouts;
  check_bool "same goodput series" true (r.Tp.Drill.v_goodput = r2.Tp.Drill.v_goodput);
  check_bool "same recovery time" true
    (r.Tp.Drill.v_recovery_time = r2.Tp.Drill.v_recovery_time)

let test_overload_drill_negative_control () =
  let r = run_drill ~defenses:false () in
  check_bool "gate fails undefended" false (Tp.Drill.overload_pass r);
  check_bool "stayed collapsed under base load" true
    (r.Tp.Drill.v_recovery_time = None);
  check_int "nothing was rejected (no admission)" 0 r.Tp.Drill.v_rejected;
  check_bool "the storm showed up as timeouts" true (r.Tp.Drill.v_timeouts > 0);
  (* Rejected is backpressure, lost is betrayal: even collapsed, every
     acknowledged row must survive the crash. *)
  check_int "still zero acked rows lost" 0 r.Tp.Drill.v_lost_rows

let test_overload_drill_second_seed () =
  let seed = 0xBEEF1L in
  let d = run_drill ~seed () in
  check_bool "defended passes on a second seed" true (Tp.Drill.overload_pass d);
  let u = run_drill ~seed ~defenses:false () in
  check_bool "negative control fails on a second seed" false (Tp.Drill.overload_pass u)

let suite =
  [
    ( "overload.budget",
      [
        QCheck_alcotest.to_alcotest prop_budget_bounded;
        QCheck_alcotest.to_alcotest prop_budget_refill_monotone;
        QCheck_alcotest.to_alcotest prop_budget_exhaustion_denies;
      ] );
    ( "overload.admission",
      [
        QCheck_alcotest.to_alcotest prop_admits_never_expired;
        QCheck_alcotest.to_alcotest prop_admits_respects_wait_estimate;
      ] );
    ( "overload.faultplan",
      [
        Alcotest.test_case "flash crowd is overload-drill-only" `Quick
          test_flash_crowd_overload_only;
        Alcotest.test_case "overload plan validates in scope" `Quick
          test_overload_plan_validates;
      ] );
    ( "overload.drill",
      [
        Alcotest.test_case "defended drill passes and replays" `Slow
          test_overload_drill_defended;
        Alcotest.test_case "negative control stays collapsed" `Slow
          test_overload_drill_negative_control;
        Alcotest.test_case "second seed" `Slow test_overload_drill_second_seed;
      ] );
  ]
