(* Storage-integrity tests: silent-corruption injection (decay, torn
   stores), the PMM scrubber, verified reads with read-repair, the
   torn-tail recovery contract, and the corruption drill. *)

open Simkit
open Nsk
open Pm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- Crc32: known answers and the incremental API --- *)

let test_crc32_known_answers () =
  (* IEEE 802.3 reference vectors. *)
  Alcotest.(check int32) "check value" 0xCBF43926l (Crc32.string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.string "");
  Alcotest.(check int32) "a" 0xE8B7BE43l (Crc32.string "a");
  Alcotest.(check int32) "abc" 0x352441C2l (Crc32.string "abc")

let test_crc32_incremental_matches_oneshot () =
  let b = Bytes.of_string "incremental-crc-over-several-updates" in
  let n = Bytes.length b in
  let st = Crc32.update Crc32.init b ~pos:0 ~len:10 in
  let st = Crc32.update st b ~pos:10 ~len:5 in
  let st = Crc32.update st b ~pos:15 ~len:(n - 15) in
  Alcotest.(check int32) "split in three" (Crc32.bytes b) (Crc32.finish st);
  Alcotest.(check int32)
    "degenerate single piece"
    (Crc32.sub b ~pos:0 ~len:n)
    (Crc32.finish (Crc32.update Crc32.init b ~pos:0 ~len:n))

let prop_crc32_incremental =
  QCheck.Test.make ~name:"crc32 incremental == one-shot at any split" ~count:200
    QCheck.(pair (string_of_size (Gen.int_range 1 200)) (int_bound 1000))
    (fun (s, cut) ->
      let b = Bytes.of_string s in
      let n = Bytes.length b in
      let k = cut mod (n + 1) in
      let st = Crc32.update Crc32.init b ~pos:0 ~len:k in
      let st = Crc32.update st b ~pos:k ~len:(n - k) in
      Crc32.finish st = Crc32.bytes b)

(* --- Topology (same shape as test_pm's) --- *)

type topo = {
  sim : Sim.t;
  node : Node.t;
  npmu_a : Npmu.t;
  npmu_b : Npmu.t;
  pmm : Pmm.t;
}

let make_topo ?(capacity = 1 lsl 20) () =
  let sim = Sim.create ~seed:0x517BL () in
  let node = Node.create sim ~cpus:4 () in
  let fabric = Node.fabric node in
  let npmu_a = Npmu.create sim fabric ~name:"npmu-a" ~capacity in
  let npmu_b = Npmu.create sim fabric ~name:"npmu-b" ~capacity in
  let dev_a = Pmm.device_of_npmu npmu_a in
  let dev_b = Pmm.device_of_npmu npmu_b in
  Pmm.format Pmm.default_config dev_a dev_b;
  let pmm =
    Pmm.start ~fabric ~name:"$PMM" ~primary_cpu:(Node.cpu node 0)
      ~backup_cpu:(Node.cpu node 1) ~primary_dev:dev_a ~mirror_dev:dev_b ()
  in
  { sim; node; npmu_a; npmu_b; pmm }

let client ?config topo cpu_idx =
  Pm_client.attach ~cpu:(Node.cpu topo.node cpu_idx) ~fabric:(Node.fabric topo.node)
    ~pmm:(Pmm.server topo.pmm) ?config ()

let verified_config =
  { Pm_client.default_config with Pm_client.verified_reads = true }

(* A scrubber cadence fast enough that a few simulated milliseconds
   cover many passes over the small test regions. *)
let fast_scrub =
  { Pmm.default_scrub_config with Pmm.scrub_interval = Time.us 10 }

(* --- Npmu decay and torn stores --- *)

let test_npmu_decay_flips_bits () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h =
        Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"r" ~size:8192)
      in
      let info = Pm_client.info h in
      Test_util.check_result_ok "write"
        (Pm_client.write c h ~off:0 ~data:(Bytes.make 256 'x'));
      let dev_off = info.Pm_types.net_base + 16 in
      Npmu.decay topo.npmu_b ~off:dev_off ~bits:16;
      check_bool "mirror diverged" true
        (Npmu.peek topo.npmu_a ~off:dev_off ~len:2
        <> Npmu.peek topo.npmu_b ~off:dev_off ~len:2);
      check_int "decay events" 1 (Npmu.decay_events topo.npmu_b);
      check_int "bits flipped" 16 (Npmu.bits_flipped topo.npmu_b);
      (* Decay is silent: a plain read still serves the primary fine. *)
      match Pm_client.read c h ~off:0 ~len:256 with
      | Ok data -> check_str "primary intact" (String.make 256 'x') (Bytes.to_string data)
      | Error _ -> Alcotest.fail "read failed")

let test_npmu_decay_validates () =
  let topo = make_topo ~capacity:65536 () in
  Alcotest.check_raises "bits must be positive"
    (Invalid_argument "Npmu.decay: bits must be positive") (fun () ->
      Npmu.decay topo.npmu_a ~off:0 ~bits:0);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Npmu.decay: out of range") (fun () ->
      Npmu.decay topo.npmu_a ~off:65530 ~bits:128)

let test_npmu_tear_last_write () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h =
        Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"r" ~size:8192)
      in
      let info = Pm_client.info h in
      Test_util.check_result_ok "write"
        (Pm_client.write c h ~off:0 ~data:(Bytes.make 128 'w'));
      (match Npmu.tear_last_write topo.npmu_b with
      | None -> Alcotest.fail "nothing torn despite a completed write"
      | Some (off, len) ->
          check_int "tears the trailing half" 64 len;
          check_int "at the write's midpoint" (info.Pm_types.net_base + 64) off);
      check_int "torn counter" 1 (Npmu.torn_writes topo.npmu_b);
      (* Primary copy untouched: the pair diverges. *)
      check_bool "pair diverged" true
        (Npmu.peek topo.npmu_a ~off:info.Pm_types.net_base ~len:128
        <> Npmu.peek topo.npmu_b ~off:info.Pm_types.net_base ~len:128))

let test_npmu_tear_without_write () =
  let sim = Sim.create () in
  let node = Node.create sim ~cpus:2 () in
  let d = Npmu.create sim (Node.fabric node) ~name:"fresh" ~capacity:4096 in
  check_bool "nothing to tear" true (Npmu.tear_last_write d = None);
  check_int "no torn counter" 0 (Npmu.torn_writes d)

(* --- Scrubber: detect, repair, quarantine --- *)

let test_scrubber_repairs_decayed_mirror () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h =
        Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"r" ~size:8192)
      in
      let info = Pm_client.info h in
      Test_util.check_result_ok "write"
        (Pm_client.write c h ~off:0 ~data:(Bytes.make 4096 'd'));
      Pmm.start_scrubber topo.pmm ~cpu:(Node.cpu topo.node 0) ~config:fast_scrub ();
      (* Let a clean pass record the chunk in the checksum table. *)
      Sim.sleep (Time.ms 5);
      check_bool "table populated" true (Pmm.scrub_table_entries topo.pmm >= 1);
      Npmu.decay topo.npmu_b ~off:(info.Pm_types.net_base + 100) ~bits:24;
      Sim.sleep (Time.ms 5);
      Pmm.stop_scrubber topo.pmm;
      check_bool "repair counted" true (Pmm.scrub_repairs topo.pmm >= 1);
      check_str "mirror healed from primary"
        (Bytes.to_string (Npmu.peek topo.npmu_a ~off:info.Pm_types.net_base ~len:4096))
        (Bytes.to_string (Npmu.peek topo.npmu_b ~off:info.Pm_types.net_base ~len:4096));
      check_bool "audit clean" true (Pmm.divergent_chunks topo.pmm = []))

let test_scrubber_quarantines_double_corruption () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h =
        Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"r" ~size:8192)
      in
      let info = Pm_client.info h in
      Test_util.check_result_ok "write"
        (Pm_client.write c h ~off:0 ~data:(Bytes.make 4096 'q'));
      Pmm.start_scrubber topo.pmm ~cpu:(Node.cpu topo.node 0) ~config:fast_scrub ();
      Sim.sleep (Time.ms 5);
      (* Both copies rot differently: no copy matches the table, so the
         scrubber cannot arbitrate and must quarantine after repeated
         strikes rather than guess. *)
      Npmu.decay topo.npmu_a ~off:(info.Pm_types.net_base + 40) ~bits:8;
      Npmu.decay topo.npmu_b ~off:(info.Pm_types.net_base + 80) ~bits:16;
      Sim.sleep (Time.ms 10);
      Pmm.stop_scrubber topo.pmm;
      check_bool "quarantined" true (Pmm.scrub_quarantined topo.pmm >= 1);
      check_bool "surfaced for the operator" true
        (Pmm.scrub_quarantined_chunks topo.pmm <> []);
      check_int "never guessed a repair" 0 (Pmm.scrub_repairs topo.pmm);
      (* The audit excludes quarantined chunks: they are accounted for,
         not silent. *)
      check_bool "audit excludes quarantined" true (Pmm.divergent_chunks topo.pmm = []))

let test_scrubber_restart_rejected () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      Pmm.start_scrubber topo.pmm ~cpu:(Node.cpu topo.node 0) ~config:fast_scrub ();
      Alcotest.check_raises "double start"
        (Invalid_argument "Pmm.start_scrubber: already running") (fun () ->
          Pmm.start_scrubber topo.pmm ~cpu:(Node.cpu topo.node 0) ~config:fast_scrub ());
      Pmm.stop_scrubber topo.pmm;
      Pmm.stop_scrubber topo.pmm (* idempotent *))

(* --- Verified reads --- *)

let test_verified_read_repairs_decayed_primary () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client ~config:verified_config topo 2 in
      let h =
        Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"r" ~size:8192)
      in
      let info = Pm_client.info h in
      Test_util.check_result_ok "write"
        (Pm_client.write c h ~off:0 ~data:(Bytes.make 4096 'v'));
      (* One scrub pass builds the trusted checksum table, then the
         scrubber stops — read repair must work on its own. *)
      Pmm.start_scrubber topo.pmm ~cpu:(Node.cpu topo.node 0) ~config:fast_scrub ();
      Sim.sleep (Time.ms 5);
      Pmm.stop_scrubber topo.pmm;
      Sim.sleep (Time.ms 2);
      Npmu.decay topo.npmu_a ~off:(info.Pm_types.net_base + 50) ~bits:32;
      (match Pm_client.read c h ~off:0 ~len:4096 with
      | Ok data -> check_str "served repaired contents" (String.make 4096 'v') (Bytes.to_string data)
      | Error _ -> Alcotest.fail "verified read failed");
      check_int "read repair counted" 1 (Pm_client.read_repairs c);
      check_int "nothing unrepairable" 0 (Pm_client.verify_unrepaired c);
      check_str "primary healed from mirror"
        (Bytes.to_string (Npmu.peek topo.npmu_b ~off:info.Pm_types.net_base ~len:4096))
        (Bytes.to_string (Npmu.peek topo.npmu_a ~off:info.Pm_types.net_base ~len:4096)))

let test_verified_read_without_table_serves_primary () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client ~config:verified_config topo 2 in
      let h =
        Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"r" ~size:8192)
      in
      let info = Pm_client.info h in
      Test_util.check_result_ok "write"
        (Pm_client.write c h ~off:0 ~data:(Bytes.make 256 'p'));
      (* No scrubber has ever run: divergence is detected but cannot be
         arbitrated, so the read counts it and serves the primary. *)
      Npmu.decay topo.npmu_b ~off:(info.Pm_types.net_base + 8) ~bits:8;
      (match Pm_client.read c h ~off:0 ~len:256 with
      | Ok data -> check_str "primary served" (String.make 256 'p') (Bytes.to_string data)
      | Error _ -> Alcotest.fail "read failed");
      check_bool "divergence seen" true (Pm_client.verify_divergences c >= 1);
      check_bool "counted unrepaired" true (Pm_client.verify_unrepaired c >= 1);
      check_int "no repair invented" 0 (Pm_client.read_repairs c))

(* --- Pm_queue: torn record beyond the tail --- *)

let test_pm_queue_ignores_corruption_beyond_tail () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h =
        Test_util.ok_or_fail ~msg:"create"
          (Pm_client.create_region c ~name:"q" ~size:32768)
      in
      let info = Pm_client.info h in
      let q = Test_util.ok_or_fail ~msg:"queue" (Pm_queue.create c h) in
      Test_util.check_result_ok "enq alpha" (Pm_queue.enqueue q (Bytes.of_string "alpha"));
      Test_util.check_result_ok "enq beta" (Pm_queue.enqueue q (Bytes.of_string "beta"));
      (* A crash mid-enqueue leaves a torn record past the tail; model
         it as garbage on both devices beyond the committed records. *)
      let beyond = info.Pm_types.net_base + info.Pm_types.length - 256 in
      Npmu.decay topo.npmu_a ~off:beyond ~bits:(8 * 64);
      Npmu.decay topo.npmu_b ~off:beyond ~bits:(8 * 64);
      (* A fresh consumer (as after the crash) drains exactly the
         committed records and never surfaces the garbage. *)
      let c2 = client topo 3 in
      let h2 = Test_util.ok_or_fail ~msg:"open" (Pm_client.open_region c2 ~name:"q") in
      let q2 = Test_util.ok_or_fail ~msg:"attach" (Pm_queue.attach c2 h2) in
      (match Pm_queue.dequeue q2 with
      | Ok (Some b) -> check_str "first" "alpha" (Bytes.to_string b)
      | _ -> Alcotest.fail "expected alpha");
      (match Pm_queue.dequeue q2 with
      | Ok (Some b) -> check_str "second" "beta" (Bytes.to_string b)
      | _ -> Alcotest.fail "expected beta");
      match Pm_queue.dequeue q2 with
      | Ok None -> ()
      | _ -> Alcotest.fail "torn bytes beyond the tail surfaced")

(* --- Log backend: torn tails, torn headers, mirror salvage --- *)

let update_record key =
  Tp.Audit.Update
    { txn = 1; file = 0; partition = 0; key; payload_len = 64; payload_crc = 0; before_len = 0 }

let append_records log n =
  for i = 1 to n do
    Test_util.check_result_ok "append"
      (Tp.Log_backend.write_records log [ (i, update_record (100 + i)) ])
  done

let test_recovery_truncates_torn_tail () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h =
        Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"t" ~size:65536)
      in
      let info = Pm_client.info h in
      let log = Tp.Log_backend.pm c h in
      append_records log 2;
      let b2 = Tp.Log_backend.bytes_written log in
      append_records log 1;
      (* Corrupt the final frame's header bytes on BOTH copies — a true
         torn tail (power cut mid-append).  Recovery must truncate to
         the last valid frame, not error. *)
      let frame3 = info.Pm_types.net_base + 64 + b2 in
      Npmu.decay topo.npmu_a ~off:(frame3 + 10) ~bits:32;
      Npmu.decay topo.npmu_b ~off:(frame3 + 10) ~bits:32;
      match Tp.Log_backend.recovery_read log with
      | Error e -> Alcotest.fail ("recovery errored on a torn tail: " ^ e)
      | Ok records ->
          check_int "truncated to the valid prefix" 2 (List.length records);
          List.iteri
            (fun i (asn, _) -> check_int "asn order" (i + 1) asn)
            records)

let test_recovery_salvages_torn_frame_from_mirror () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client ~config:verified_config topo 2 in
      let h =
        Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"t" ~size:65536)
      in
      let info = Pm_client.info h in
      let log = Tp.Log_backend.pm c h in
      append_records log 1;
      let b1 = Tp.Log_backend.bytes_written log in
      append_records log 2;
      (* Frame 2 torn on the primary only: every record reached both
         mirrors before its commit acked, so the replay salvages the
         rest of the trail from the mirror instead of truncating two
         acknowledged records away. *)
      Npmu.decay topo.npmu_a ~off:(info.Pm_types.net_base + 64 + b1 + 10) ~bits:32;
      match Tp.Log_backend.recovery_read log with
      | Error e -> Alcotest.fail ("recovery errored: " ^ e)
      | Ok records -> check_int "all three records recovered" 3 (List.length records))

let test_recovery_scans_past_torn_header () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h =
        Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"t" ~size:65536)
      in
      let info = Pm_client.info h in
      let log = Tp.Log_backend.pm c h in
      append_records log 3;
      (* Garble the ring header's magic: the write frontier cannot be
         trusted, so recovery falls back to a full-area scan and lets the
         per-frame CRCs find the end of the valid prefix. *)
      Npmu.decay topo.npmu_a ~off:info.Pm_types.net_base ~bits:16;
      Npmu.decay topo.npmu_b ~off:info.Pm_types.net_base ~bits:16;
      match Tp.Log_backend.recovery_read log with
      | Error e -> Alcotest.fail ("recovery errored on a torn header: " ^ e)
      | Ok records -> check_int "full scan finds every record" 3 (List.length records))

(* --- Faultplan validation --- *)

let test_faultplan_rejects_pm_faults_on_disk () =
  let sim = Sim.create ~seed:0x11L () in
  Test_util.run_in sim (fun () ->
      let system = Tp.System.build sim Tp.System.default_config in
      (match
         Tp.Faultplan.validate system
           [
             Tp.Faultplan.at (Time.ms 1)
               (Tp.Faultplan.Media_decay { device = 0; off = 0; bits = 8 });
           ]
       with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "media decay accepted on a disk-audit system");
      match
        Tp.Faultplan.validate system
          [ Tp.Faultplan.at (Time.ms 1) (Tp.Faultplan.Torn_write { device = 0 }) ]
      with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "torn write accepted on a disk-audit system")

(* --- The corruption drill --- *)

let drill_integrity r =
  match r.Tp.Drill.integrity with
  | Some i -> i
  | None -> Alcotest.fail "PM drill report carries no integrity audit"

let test_corruption_drill_defended () =
  (* Two seeds: the gates must hold on each, not by luck on one. *)
  List.iter
    (fun seed ->
      match Tp.Drill.run_corruption ~seed () with
      | Error e -> Alcotest.fail ("corruption drill failed: " ^ e)
      | Ok r ->
          let i = drill_integrity r in
          check_int "zero acked rows lost" 0 r.Tp.Drill.lost_rows;
          check_int "zero unrepaired divergence" 0 i.Tp.Drill.unrepaired_divergence;
          check_bool "scrubber repaired at least one decay" true
            (i.Tp.Drill.scrub_repairs >= 1);
          check_bool "a verified read repaired at least one decay" true
            (i.Tp.Drill.read_repairs >= 1);
          check_bool "invariant bundle" true (Tp.Drill.integrity_clean r))
    [ 0xD5177L; 42L ]

let test_corruption_drill_deterministic () =
  let run () =
    match Tp.Drill.run_corruption ~seed:7L () with
    | Error e -> Alcotest.fail ("corruption drill failed: " ^ e)
    | Ok r ->
        let i = drill_integrity r in
        ( r.Tp.Drill.elapsed,
          r.Tp.Drill.acked_rows,
          r.Tp.Drill.lost_rows,
          i.Tp.Drill.scrub_repairs,
          i.Tp.Drill.scrub_quarantined,
          i.Tp.Drill.read_repairs,
          i.Tp.Drill.unrepaired_divergence )
  in
  check_bool "same seed, same report" true (run () = run ())

let test_corruption_drill_negative_control () =
  match Tp.Drill.run_corruption ~seed:0xD5177L ~defenses:false () with
  | Error e -> Alcotest.fail ("negative control failed to run: " ^ e)
  | Ok r ->
      let i = drill_integrity r in
      check_bool "undefended run loses acked rows" true (r.Tp.Drill.lost_rows > 0);
      check_bool "divergence left behind" true (i.Tp.Drill.unrepaired_divergence > 0);
      check_int "no scrubber ran" 0 i.Tp.Drill.scrub_chunks;
      check_bool "invariant violated" true (not (Tp.Drill.integrity_clean r))

let suite =
  [
    ( "integrity.crc32",
      [
        Alcotest.test_case "known answers" `Quick test_crc32_known_answers;
        Alcotest.test_case "incremental matches one-shot" `Quick
          test_crc32_incremental_matches_oneshot;
        QCheck_alcotest.to_alcotest prop_crc32_incremental;
      ] );
    ( "integrity.injection",
      [
        Alcotest.test_case "decay flips bits silently" `Quick test_npmu_decay_flips_bits;
        Alcotest.test_case "decay validates arguments" `Quick test_npmu_decay_validates;
        Alcotest.test_case "torn store corrupts trailing half" `Quick
          test_npmu_tear_last_write;
        Alcotest.test_case "nothing to tear before any write" `Quick
          test_npmu_tear_without_write;
        Alcotest.test_case "disk mode rejects PM faults" `Quick
          test_faultplan_rejects_pm_faults_on_disk;
      ] );
    ( "integrity.scrubber",
      [
        Alcotest.test_case "repairs a decayed mirror" `Quick
          test_scrubber_repairs_decayed_mirror;
        Alcotest.test_case "quarantines double corruption" `Quick
          test_scrubber_quarantines_double_corruption;
        Alcotest.test_case "single instance, idempotent stop" `Quick
          test_scrubber_restart_rejected;
      ] );
    ( "integrity.verified_reads",
      [
        Alcotest.test_case "repairs a decayed primary" `Quick
          test_verified_read_repairs_decayed_primary;
        Alcotest.test_case "unarbitratable divergence serves primary" `Quick
          test_verified_read_without_table_serves_primary;
      ] );
    ( "integrity.torn",
      [
        Alcotest.test_case "queue ignores corruption beyond tail" `Quick
          test_pm_queue_ignores_corruption_beyond_tail;
        Alcotest.test_case "recovery truncates a torn tail" `Quick
          test_recovery_truncates_torn_tail;
        Alcotest.test_case "recovery salvages a torn frame from the mirror" `Quick
          test_recovery_salvages_torn_frame_from_mirror;
        Alcotest.test_case "recovery scans past a torn header" `Quick
          test_recovery_scans_past_torn_header;
      ] );
    ( "integrity.drill",
      [
        Alcotest.test_case "defended run holds every gate" `Slow
          test_corruption_drill_defended;
        Alcotest.test_case "bit-deterministic per seed" `Slow
          test_corruption_drill_deterministic;
        Alcotest.test_case "negative control surfaces corruption" `Slow
          test_corruption_drill_negative_control;
      ] );
  ]
