(* Gray-failure tolerance: fail-slow injection primitives, client
   latency health, hedged reads, slow-mirror demotion/re-admission, the
   timeout-waker cleanup underneath them, and the end-to-end drill. *)

open Simkit
open Nsk
open Pm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Topology (mirrored PM pair, as in test_pm) --- *)

type topo = {
  sim : Sim.t;
  node : Node.t;
  npmu_a : Npmu.t;
  npmu_b : Npmu.t;
  pmm : Pmm.t;
}

let make_topo ?(capacity = 1 lsl 20) () =
  let sim = Sim.create ~seed:0x6AAFL () in
  let node = Node.create sim ~cpus:4 () in
  let fabric = Node.fabric node in
  let npmu_a = Npmu.create sim fabric ~name:"npmu-a" ~capacity in
  let npmu_b = Npmu.create sim fabric ~name:"npmu-b" ~capacity in
  let dev_a = Pmm.device_of_npmu npmu_a in
  let dev_b = Pmm.device_of_npmu npmu_b in
  Pmm.format Pmm.default_config dev_a dev_b;
  let pmm =
    Pmm.start ~fabric ~name:"$PMM" ~primary_cpu:(Node.cpu node 0) ~backup_cpu:(Node.cpu node 1)
      ~primary_dev:dev_a ~mirror_dev:dev_b ()
  in
  { sim; node; npmu_a; npmu_b; pmm }

let client ?config topo cpu_idx =
  Pm_client.attach ~cpu:(Node.cpu topo.node cpu_idx) ~fabric:(Node.fabric topo.node)
    ~pmm:(Pmm.server topo.pmm) ?config ()

let opened ~msg = function Ok h -> h | Error _ -> Alcotest.fail msg

(* Time one thunk in simulated nanoseconds. *)
let timed sim f =
  let t0 = Sim.now sim in
  let r = f () in
  (r, Sim.now sim - t0)

(* --- Fail-slow injection primitives --- *)

let test_npmu_degrade_stretches_transfers () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h = opened ~msg:"create" (Pm_client.create_region c ~name:"g" ~size:65536) in
      Test_util.check_result_ok "write" (Pm_client.write c h ~off:0 ~data:(Bytes.create 512));
      let r, healthy = timed topo.sim (fun () -> Pm_client.read_device c h ~mirror:false ~off:0 ~len:512) in
      Test_util.check_result_ok "healthy read" r;
      check_bool "not degraded yet" false (Npmu.is_degraded topo.npmu_a);
      Npmu.degrade topo.npmu_a ~factor:50.0 ();
      check_bool "degraded" true (Npmu.is_degraded topo.npmu_a);
      Alcotest.(check (float 0.001)) "factor" 50.0 (Npmu.slow_factor topo.npmu_a);
      check_int "one degrade event" 1 (Npmu.degrade_events topo.npmu_a);
      let r, slow = timed topo.sim (fun () -> Pm_client.read_device c h ~mirror:false ~off:0 ~len:512) in
      Test_util.check_result_ok "slow read still answers" r;
      check_bool "at least 10x slower" true (slow > 10 * healthy);
      Npmu.restore_speed topo.npmu_a;
      check_bool "restored" false (Npmu.is_degraded topo.npmu_a);
      let r, again = timed topo.sim (fun () -> Pm_client.read_device c h ~mirror:false ~off:0 ~len:512) in
      Test_util.check_result_ok "restored read" r;
      check_bool "back to healthy latency" true (again < 2 * healthy))

let test_rail_slow_stretches_transfers () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let fabric = Node.fabric topo.node in
      let c = client topo 2 in
      let h = opened ~msg:"create" (Pm_client.create_region c ~name:"r" ~size:65536) in
      Test_util.check_result_ok "write" (Pm_client.write c h ~off:0 ~data:(Bytes.create 512));
      let r, healthy = timed topo.sim (fun () -> Pm_client.read_device c h ~mirror:false ~off:0 ~len:512) in
      Test_util.check_result_ok "healthy read" r;
      (* Slow every rail so the routed one is always degraded. *)
      Servernet.Fabric.set_rail_slow fabric 0 20.0;
      Servernet.Fabric.set_rail_slow fabric 1 20.0;
      Alcotest.(check (float 0.001)) "rail factor" 20.0 (Servernet.Fabric.rail_slow fabric 0);
      let r, slow = timed topo.sim (fun () -> Pm_client.read_device c h ~mirror:false ~off:0 ~len:512) in
      Test_util.check_result_ok "slow read" r;
      check_bool "at least 5x slower" true (slow > 5 * healthy);
      Servernet.Fabric.set_rail_slow fabric 0 1.0;
      Servernet.Fabric.set_rail_slow fabric 1 1.0;
      let r, again = timed topo.sim (fun () -> Pm_client.read_device c h ~mirror:false ~off:0 ~len:512) in
      Test_util.check_result_ok "restored read" r;
      check_bool "back to healthy latency" true (again < 2 * healthy))

let test_volume_degrade_stretches_service () =
  Test_util.run_process (fun sim ->
      let vol = Diskio.Volume.create sim ~name:"$GRAY" () in
      let (), healthy = timed sim (fun () ->
          Test_util.check_result_ok "write" (Diskio.Volume.write vol ~block:1000 ~len:4096))
      in
      Diskio.Volume.degrade vol ~factor:10.0 ();
      Alcotest.(check (float 0.001)) "factor" 10.0 (Diskio.Volume.slow_factor vol);
      let (), slow = timed sim (fun () ->
          Test_util.check_result_ok "slow write" (Diskio.Volume.write vol ~block:2000 ~len:4096))
      in
      check_bool "service stretched" true (slow > 3 * healthy);
      Diskio.Volume.restore_speed vol;
      Alcotest.(check (float 0.001)) "restored" 1.0 (Diskio.Volume.slow_factor vol))

(* --- Timeout wakers leave nothing behind (stale-waker regression) --- *)

let test_ivar_timeout_waker_cleanup () =
  Test_util.run_process (fun sim ->
      for i = 1 to 500 do
        let iv = Ivar.create () in
        let (_ : Sim.pid) =
          Sim.spawn sim ~name:"filler" (fun () -> Ivar.fill iv i)
        in
        (* A long deadline that never fires: the value always arrives
           first.  Before the cancellable-deadline fix each iteration
           left a one-hour timer in the heap. *)
        match Ivar.read_timeout iv (Time.sec 3600) with
        | Some v when v = i -> ()
        | _ -> Alcotest.fail "ivar value lost"
      done;
      check_bool "no stale timers queued" true (Sim.queue_depth sim < 8);
      check_bool "heap compacted" true (Sim.heap_size sim < 64))

let test_mailbox_timeout_waker_cleanup () =
  Test_util.run_process (fun sim ->
      let mb = Mailbox.create ~name:"gray" () in
      for i = 1 to 500 do
        let (_ : Sim.pid) =
          Sim.spawn sim ~name:"sender" (fun () -> Mailbox.send mb i)
        in
        match Mailbox.recv_timeout mb (Time.sec 3600) with
        | Some v when v = i -> ()
        | _ -> Alcotest.fail "mailbox message lost"
      done;
      check_bool "no stale timers queued" true (Sim.queue_depth sim < 8);
      check_bool "heap compacted" true (Sim.heap_size sim < 64))

(* --- Bounded management retries --- *)

let test_mgmt_retry_exhausted () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let config =
        {
          Pm_client.default_config with
          Pm_client.mgmt_timeout = Time.ms 5;
          mgmt_retries = 2;
          mgmt_backoff = Time.us 10;
        }
      in
      let c = client ~config topo 2 in
      Pmm.halt topo.pmm;
      (match Pm_client.open_region c ~name:"absent" with
      | Error Pm_types.Manager_down -> ()
      | Ok _ -> Alcotest.fail "open succeeded against a halted manager"
      | Error _ -> Alcotest.fail "expected Manager_down");
      check_int "retries used" 2 (Pm_client.mgmt_retries_used c);
      check_int "exhaustion counted once" 1 (Pm_client.mgmt_retry_exhausted c))

(* --- Backoff contract (property) --- *)

let prop_backoff_within_ceiling =
  QCheck.Test.make ~name:"backoff span within jitter ceiling, ceiling monotone and capped"
    ~count:300
    QCheck.(triple (int_range 1 1_000_000) (int_bound 20) (int_bound 10_000))
    (fun (base, attempt, seed) ->
      let rng = Rng.create (Int64.of_int (seed + 1)) in
      let ceiling = Pm_client.backoff_ceiling ~base ~attempt in
      let expected = max 1 (base * (1 lsl min attempt 6)) in
      let span = Pm_client.backoff_span rng ~base ~attempt in
      ceiling = expected
      && span >= 1
      && span <= ceiling + 1
      && Pm_client.backoff_ceiling ~base ~attempt:(attempt + 1) >= ceiling
      && Pm_client.backoff_ceiling ~base ~attempt:7 = Pm_client.backoff_ceiling ~base ~attempt:6)

(* --- Client latency health --- *)

let health_config =
  {
    Pm_client.default_config with
    Pm_client.slo_budget = Time.us 100;
    hedged_reads = true;
    hedge_min = Time.us 10;
    hedge_max = Time.us 200;
  }

let test_client_slow_suspect_transitions () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      (* Hedging off: the slow primary sample must land synchronously. *)
      let c = client ~config:{ health_config with Pm_client.hedged_reads = false } topo 2 in
      let h = opened ~msg:"create" (Pm_client.create_region c ~name:"s" ~size:65536) in
      Test_util.check_result_ok "write" (Pm_client.write c h ~off:0 ~data:(Bytes.create 512));
      for _ = 1 to 8 do
        Test_util.check_result_ok "healthy read" (Pm_client.read c h ~off:0 ~len:512)
      done;
      check_int "no suspects while healthy" 0 (Pm_client.slow_suspects c);
      Npmu.degrade topo.npmu_a ~factor:50.0 ();
      for _ = 1 to 4 do
        Test_util.check_result_ok "slow read" (Pm_client.read c h ~off:0 ~len:512)
      done;
      check_bool "suspect flagged" true (Pm_client.latency_suspect c ~mirror:false);
      check_int "one transition" 1 (Pm_client.slow_suspects c);
      check_bool "ewma tracks the stretch" true (Pm_client.latency_ewma c ~mirror:false > 100_000.0))

let test_hedged_read_mirror_wins () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client ~config:health_config topo 2 in
      let h = opened ~msg:"create" (Pm_client.create_region c ~name:"h" ~size:65536) in
      Test_util.check_result_ok "write" (Pm_client.write c h ~off:0 ~data:(Bytes.create 512));
      (* Primary fail-slow: the hedge fires at hedge_max (200 us) and the
         healthy mirror answers long before the stretched primary. *)
      Npmu.degrade topo.npmu_a ~factor:100.0 ();
      Test_util.check_result_ok "hedged read answers" (Pm_client.read c h ~off:0 ~len:512);
      check_bool "hedge fired" true (Pm_client.hedged_reads_fired c >= 1);
      check_bool "mirror won" true (Pm_client.hedge_wins c >= 1))

(* --- PMM mirror-health monitor: demotion and re-admission --- *)

let fast_health =
  {
    Pmm.default_health_config with
    Pmm.probe_interval = Time.us 100;
    demote_after = 2;
    readmit_after = 3;
  }

let test_monitor_demotes_and_readmits () =
  let topo = make_topo () in
  Pmm.start_monitor topo.pmm ~cpu:(Node.cpu topo.node 1) ~config:fast_health ();
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h = opened ~msg:"create" (Pm_client.create_region c ~name:"m" ~size:65536) in
      Test_util.check_result_ok "mirrored write" (Pm_client.write c h ~off:0 ~data:(Bytes.create 512));
      Sim.sleep (Time.ms 2);
      check_bool "probing" true (Pmm.monitor_probes topo.pmm > 0);
      check_bool "mirror healthy" true (Pmm.mirror_active topo.pmm);
      check_int "no demotions yet" 0 (Pmm.demotions topo.pmm);
      Npmu.degrade topo.npmu_b ~factor:200.0 ();
      Sim.sleep (Time.ms 20);
      check_int "demoted once" 1 (Pmm.demotions topo.pmm);
      check_bool "mirror fenced out" false (Pmm.mirror_active topo.pmm);
      (* The old grant was fenced by the demotion epoch bump; the client
         refreshes it transparently and writes single-copy. *)
      Test_util.check_result_ok "write under degraded durability"
        (Pm_client.write c h ~off:1024 ~data:(Bytes.create 512));
      check_bool "single-copy write counted" true (Pm_client.single_copy_writes c >= 1);
      Npmu.restore_speed topo.npmu_b;
      Sim.sleep (Time.ms 20);
      check_int "re-admitted once" 1 (Pmm.readmissions topo.pmm);
      check_bool "mirror active again" true (Pmm.mirror_active topo.pmm);
      check_bool "ewma recovered" true (Pmm.monitor_ewma_ns topo.pmm ~mirror:true < 100_000.0);
      (* Mirrored writes resume against the refreshed grant. *)
      Test_util.check_result_ok "mirrored write resumes"
        (Pm_client.write c h ~off:2048 ~data:(Bytes.create 512));
      Pmm.stop_monitor topo.pmm)

let test_demote_mirror_is_idempotent () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let _h = opened ~msg:"create" (Pm_client.create_region c ~name:"d" ~size:65536) in
      check_bool "first demotion" true (Pmm.demote_mirror topo.pmm);
      check_bool "second is a no-op" false (Pmm.demote_mirror topo.pmm);
      check_int "counted once" 1 (Pmm.demotions topo.pmm))

(* --- Fault-plan validation of the fail-slow actions --- *)

let test_faultplan_rejects_bad_slow_events () =
  let sim = Sim.create ~seed:0x11L () in
  Test_util.run_in sim (fun () ->
  let system = Tp.System.build sim Tp.System.pm_config in
  let reject msg ev =
    match Tp.Faultplan.validate system [ Tp.Faultplan.at (Time.ms 1) ev ] with
    | Error _ -> ()
    | Ok () -> Alcotest.fail msg
  in
  reject "speedup factor accepted"
    (Tp.Faultplan.Slow_device { device = 0; factor = 0.5; jitter = 0 });
  reject "device out of range"
    (Tp.Faultplan.Slow_device { device = 99; factor = 2.0; jitter = 0 });
  reject "rail out of range" (Tp.Faultplan.Slow_rail { rail = 99; factor = 2.0 });
  reject "negative jitter"
    (Tp.Faultplan.Slow_disk { volume = 0; factor = 2.0; jitter = -1 });
  match Tp.Faultplan.validate system Tp.Drill.gray_plan with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("gray plan rejected: " ^ e))

(* --- The gray-failure drill --- *)

let test_gray_drill_defended () =
  let run () =
    match Tp.Drill.run_gray () with
    | Error e -> Alcotest.fail ("gray drill failed: " ^ e)
    | Ok g -> g
  in
  let g = run () in
  check_int "zero acked rows lost (healthy)" 0 g.Tp.Drill.g_healthy.Tp.Drill.lost_rows;
  check_int "zero acked rows lost (degraded)" 0 g.Tp.Drill.g_degraded.Tp.Drill.lost_rows;
  check_bool "p99 bounded" true (g.Tp.Drill.g_p99_ratio <= g.Tp.Drill.g_p99_limit);
  check_bool "demoted" true (g.Tp.Drill.g_demotions >= 1);
  check_bool "re-admitted" true (g.Tp.Drill.g_readmissions >= 1);
  check_bool "mirror active at the end" true g.Tp.Drill.g_mirror_active;
  check_bool "client noticed" true (g.Tp.Drill.g_slow_suspects >= 1);
  check_bool "degraded durability used" true (g.Tp.Drill.g_single_copy_writes >= 1);
  check_bool "gate bundle" true (Tp.Drill.gray_pass g);
  (* Bit-determinism: the same seed replays to the same report. *)
  let g2 = run () in
  check_bool "same seed, same drill" true
    ( g.Tp.Drill.g_p99_ratio = g2.Tp.Drill.g_p99_ratio
    && g.Tp.Drill.g_demotions = g2.Tp.Drill.g_demotions
    && g.Tp.Drill.g_monitor_probes = g2.Tp.Drill.g_monitor_probes
    && g.Tp.Drill.g_degraded.Tp.Drill.elapsed = g2.Tp.Drill.g_degraded.Tp.Drill.elapsed
    && g.Tp.Drill.g_single_copy_writes = g2.Tp.Drill.g_single_copy_writes )

let test_gray_drill_negative_control () =
  match Tp.Drill.run_gray ~defenses:false () with
  | Error e -> Alcotest.fail ("negative control failed to run: " ^ e)
  | Ok g ->
      check_int "still zero loss" 0 g.Tp.Drill.g_degraded.Tp.Drill.lost_rows;
      check_bool "latency collapses past the gate" true
        (g.Tp.Drill.g_p99_ratio > g.Tp.Drill.g_p99_limit);
      check_int "no monitor ran" 0 g.Tp.Drill.g_monitor_probes;
      check_int "no demotion" 0 g.Tp.Drill.g_demotions;
      check_bool "gate violated" true (not (Tp.Drill.gray_pass g))

let suite =
  [
    ( "grayfail.inject",
      [
        Alcotest.test_case "NPMU degrade stretches transfers" `Quick
          test_npmu_degrade_stretches_transfers;
        Alcotest.test_case "slow rail stretches transfers" `Quick
          test_rail_slow_stretches_transfers;
        Alcotest.test_case "volume degrade stretches service" `Quick
          test_volume_degrade_stretches_service;
        Alcotest.test_case "fault plan validates fail-slow events" `Quick
          test_faultplan_rejects_bad_slow_events;
      ] );
    ( "grayfail.timeouts",
      [
        Alcotest.test_case "ivar timeout leaves no stale waker" `Quick
          test_ivar_timeout_waker_cleanup;
        Alcotest.test_case "mailbox timeout leaves no stale waker" `Quick
          test_mailbox_timeout_waker_cleanup;
        Alcotest.test_case "management retries are bounded" `Quick test_mgmt_retry_exhausted;
        QCheck_alcotest.to_alcotest prop_backoff_within_ceiling;
      ] );
    ( "grayfail.health",
      [
        Alcotest.test_case "client flags a slow device" `Quick
          test_client_slow_suspect_transitions;
        Alcotest.test_case "hedged read wins on the mirror" `Quick
          test_hedged_read_mirror_wins;
        Alcotest.test_case "monitor demotes and re-admits" `Quick
          test_monitor_demotes_and_readmits;
        Alcotest.test_case "manual demotion is idempotent" `Quick
          test_demote_mirror_is_idempotent;
      ] );
    ( "grayfail.drill",
      [
        Alcotest.test_case "defended drill passes and replays" `Slow test_gray_drill_defended;
        Alcotest.test_case "negative control collapses" `Slow test_gray_drill_negative_control;
      ] );
  ]
