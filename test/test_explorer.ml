(* The adversarial fault-schedule explorer: faultplan JSON round-trip,
   horizon validation, the shared oracle, the generator's corpus
   properties, the shrinker, and repro-file replay. *)

open Simkit

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(* One event of every action kind, with non-default parameters. *)
let every_action_plan =
  Tp.Faultplan.
    [
      at (Time.ms 1) (Kill_primary (Adp 2));
      at (Time.ms 2) (Kill_primary (Dp2 7));
      at (Time.ms 3) (Kill_primary Tmf);
      at (Time.ms 4) (Kill_primary Pmm);
      at (Time.ms 5) (Npmu_power_cycle { device = 1; off_for = Time.ms 35 });
      at (Time.ms 6) (Rail_down 1);
      at (Time.ms 7) (Rail_up 1);
      at (Time.ms 8) (Crc_noise_burst { rate = 0.015625; duration = Time.ms 9 });
      at (Time.ms 10) (Media_decay { device = 0; off = 123_456; bits = 77 });
      at (Time.ms 11) (Torn_write { device = 1 });
      at (Time.ms 12) Pmm_resync;
      at (Time.ms 13) Wan_partition;
      at (Time.ms 14) Wan_heal;
      at (Time.ms 15) Fence_check;
      at (Time.ms 16)
        (Slow_device { device = 0; factor = 12.5; jitter = Time.us 250 });
      at (Time.ms 17) (Slow_rail { rail = 0; factor = 3.25 });
      at (Time.ms 18) (Slow_disk { volume = 9; factor = 2.75; jitter = Time.us 50 });
      at (Time.ms 19) Restore_speed;
      at (Time.ms 20) (Flash_crowd { spike = 5.5; spike_for = Time.ms 400 });
    ]

let test_plan_json_roundtrip () =
  check_int "one event per action kind"
    (List.length Tp.Faultplan.action_kinds)
    (List.length every_action_plan);
  let json = Tp.Faultplan.to_json every_action_plan in
  (match Tp.Faultplan.of_json json with
  | Error e -> Alcotest.fail ("round-trip rejected: " ^ e)
  | Ok plan ->
      check_bool "structurally identical plan" true (plan = every_action_plan));
  (* Byte-identity through a parse cycle: serialize, parse the text,
     re-serialize — the repro-file contract. *)
  let text = Json.to_string json in
  match Json.parse text with
  | Error e -> Alcotest.fail ("serialized plan unparseable: " ^ e)
  | Ok doc -> (
      check_string "byte-identical through parse" text (Json.to_string doc);
      match Tp.Faultplan.of_json doc with
      | Error e -> Alcotest.fail ("parsed plan rejected: " ^ e)
      | Ok plan -> check_bool "identical after parse cycle" true (plan = every_action_plan))

let test_plan_json_errors () =
  (* Unknown kind: the error names the offending index and lists every
     valid kind. *)
  let bad =
    Json.List
      [
        Json.Obj [ ("after_ns", Json.Int 10); ("kind", Json.String "kill_adp"); ("index", Json.Int 0) ];
        Json.Obj [ ("after_ns", Json.Int 20); ("kind", Json.String "set_on_fire") ];
      ]
  in
  (match Tp.Faultplan.of_json bad with
  | Ok _ -> Alcotest.fail "unknown kind accepted"
  | Error e ->
      check_bool "names the action index" true (contains e "action 1");
      check_bool "names the bad kind" true (contains e "set_on_fire");
      List.iter
        (fun k -> check_bool ("lists valid kind " ^ k) true (contains e k))
        Tp.Faultplan.action_kinds);
  (* Missing parameter: named field, named index. *)
  let missing =
    Json.List [ Json.Obj [ ("after_ns", Json.Int 5); ("kind", Json.String "rail_down") ] ]
  in
  (match Tp.Faultplan.of_json missing with
  | Ok _ -> Alcotest.fail "missing field accepted"
  | Error e ->
      check_bool "names the action index" true (contains e "action 0");
      check_bool "names the missing field" true (contains e "rail"));
  (* Non-object action, non-array plan. *)
  (match Tp.Faultplan.of_json (Json.List [ Json.Int 3 ]) with
  | Ok _ -> Alcotest.fail "non-object action accepted"
  | Error e -> check_bool "names the action index" true (contains e "action 0"));
  match Tp.Faultplan.of_json (Json.Obj []) with
  | Ok _ -> Alcotest.fail "non-array plan accepted"
  | Error e -> check_bool "says array" true (contains e "array")

(* --- The horizon: events past the drill's crash point are rejected,
   not silently dropped --- *)

let test_validate_horizon () =
  let sim = Sim.create ~seed:0x40AL () in
  Test_util.run_in sim (fun () ->
      let system = Tp.System.build sim Tp.System.pm_config in
      let plan =
        Tp.Faultplan.
          [
            at (Time.ms 10) (Kill_primary (Adp 0));
            at (Time.sec 5) (Kill_primary Tmf);
          ]
      in
      (* Without a horizon the plan is fine. *)
      (match Tp.Faultplan.validate system plan with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("valid plan rejected: " ^ e));
      (* With one, the late event is named and refused. *)
      match Tp.Faultplan.validate ~horizon:(Time.sec 2) system plan with
      | Ok () -> Alcotest.fail "past-horizon event accepted"
      | Error e ->
          check_bool "names the action index" true (contains e "action 1");
          check_bool "mentions the horizon" true (contains e "horizon"))

let test_drill_run_horizon () =
  match
    Tp.Drill.run ~seed:0x1L ~horizon:(Time.ms 100) ~mode:Tp.System.Pm_audit
      ~plan:[ Tp.Faultplan.at (Time.ms 200) (Tp.Faultplan.Kill_primary Tmf) ]
      ()
  with
  | Ok _ -> Alcotest.fail "drill ran a plan with an event past the horizon"
  | Error e -> check_bool "mentions the horizon" true (contains e "horizon")

(* --- The shared oracle --- *)

let test_oracle_verdicts () =
  let open Tp.Drill.Oracle in
  let good = check "a" true "fine" in
  let bad = check "b" false "broken" in
  let v = make [ good; bad ] in
  check_bool "any failed check fails the verdict" false (pass v);
  check_int "failures lists only the failed" 1 (List.length (failures v));
  check_bool "summary names the check" true (contains (summary v) "b: broken");
  let ok = make [ good ] in
  check_bool "all-green passes" true (pass ok);
  check_string "all-green summary" "all invariants hold" (summary ok);
  match to_json v with
  | Json.Obj fields ->
      check_bool "pass field present" true
        (match List.assoc_opt "pass" fields with
        | Some (Json.Bool b) -> b = false
        | _ -> false);
      check_bool "checks listed" true
        (match List.assoc_opt "checks" fields with
        | Some (Json.List l) -> List.length l = 2
        | _ -> false)
  | _ -> Alcotest.fail "oracle verdict is not an object"

(* --- Generator properties --- *)

let pm_only_action (a : Tp.Faultplan.action) =
  match a with
  | Tp.Faultplan.Kill_primary Tp.Faultplan.Pmm | Npmu_power_cycle _ | Media_decay _
  | Torn_write _ | Pmm_resync | Fence_check | Slow_device _ ->
      true
  | _ -> false

let prop_same_seed_identical_corpus =
  QCheck.Test.make ~name:"same seed generates a byte-identical corpus" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let a = Json.to_string (Tp.Explorer.corpus_json ~seed ~budget:20) in
      let b = Json.to_string (Tp.Explorer.corpus_json ~seed ~budget:20) in
      a = b)

let prop_disk_schedules_have_no_pm_actions =
  QCheck.Test.make ~name:"disk-kind schedules never carry PM-only actions" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      Tp.Explorer.corpus ~seed ~budget:32
      |> List.filter (fun s -> s.Tp.Explorer.s_kind = Tp.Explorer.Disk)
      |> List.for_all (fun s ->
             List.for_all
               (fun ev -> not (pm_only_action ev.Tp.Faultplan.action))
               (s.Tp.Explorer.s_plan @ s.Tp.Explorer.s_recovery)))

let prop_schedules_sorted_and_in_horizon =
  QCheck.Test.make ~name:"generated schedules are sorted and inside the horizon"
    ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      Tp.Explorer.corpus ~seed ~budget:32
      |> List.for_all (fun s ->
             let sorted plan =
               let rec go = function
                 | a :: (b :: _ as rest) ->
                     a.Tp.Faultplan.after <= b.Tp.Faultplan.after && go rest
                 | _ -> true
               in
               go plan
             in
             sorted s.Tp.Explorer.s_plan
             && sorted s.Tp.Explorer.s_recovery
             && List.for_all
                  (fun ev -> ev.Tp.Faultplan.after <= Tp.Explorer.horizon)
                  (s.Tp.Explorer.s_plan @ s.Tp.Explorer.s_recovery)))

(* Mode validation: every generated single-system schedule must be
   accepted by the platform it will run on — PM schedules against a
   PM-audit system, disk schedules against a disk-audit system. *)
let test_generated_schedules_validate () =
  let sim = Sim.create ~seed:0x60DL () in
  Test_util.run_in sim (fun () ->
      (* [pm_config], not the drill's scrub-enabled corruption config:
         the background scrubber never quiesces, and [Sim.run] would
         never return.  Validation only needs the mode and topology. *)
      let pm = Tp.System.build sim Tp.System.pm_config in
      let disk = Tp.System.build sim Tp.System.default_config in
      Tp.Explorer.corpus ~seed:0xBEEF ~budget:48
      |> List.iter (fun s ->
             let target =
               match s.Tp.Explorer.s_kind with
               | Tp.Explorer.Pm -> Some pm
               | Tp.Explorer.Disk -> Some disk
               | _ -> None
             in
             match target with
             | None -> ()
             | Some system -> (
                 (match
                    Tp.Faultplan.validate ~horizon:Tp.Explorer.horizon system
                      s.Tp.Explorer.s_plan
                  with
                 | Ok () -> ()
                 | Error e ->
                     Alcotest.fail
                       (Printf.sprintf "schedule %d load plan rejected: %s"
                          s.Tp.Explorer.s_index e));
                 match Tp.Faultplan.validate system s.Tp.Explorer.s_recovery with
                 | Ok () -> ()
                 | Error e ->
                     Alcotest.fail
                       (Printf.sprintf "schedule %d recovery plan rejected: %s"
                          s.Tp.Explorer.s_index e))))

let test_coverage_accounting () =
  let schedules = Tp.Explorer.corpus ~seed:0xC0FE ~budget:64 in
  let cells = Tp.Explorer.coverage schedules in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 cells in
  let events =
    List.fold_left
      (fun acc s ->
        acc
        + List.length s.Tp.Explorer.s_plan
        + List.length s.Tp.Explorer.s_recovery)
      0 schedules
  in
  check_int "every event lands in exactly one cell" events total;
  let phases = List.sort_uniq compare (List.map (fun ((_, p, _), _) -> p) cells) in
  check_bool "load phase covered" true (List.mem "load" phases);
  check_bool "recovery phase covered" true (List.mem "recovery" phases)

(* --- The shrinker --- *)

let prop_shrinker_minimizes =
  (* Against a pure predicate ("the plan still contains a TMF kill"),
     the shrinker must return a smaller-or-equal schedule that still
     fails, regardless of where the essential action hides. *)
  QCheck.Test.make ~name:"shrinker output still fails and never grows" ~count:60
    QCheck.(pair (int_bound 100_000) (int_range 0 15))
    (fun (seed, index) ->
      let s = Tp.Explorer.generate ~seed ~index in
      let essential =
        List.exists
          (fun ev -> ev.Tp.Faultplan.action = Tp.Faultplan.Kill_primary Tp.Faultplan.Tmf)
      in
      let fails (p, r) = essential p || essential r in
      if not (fails (s.Tp.Explorer.s_plan, s.Tp.Explorer.s_recovery)) then true
      else begin
        let (p', r'), _replays =
          Tp.Explorer.minimize ~fails (s.Tp.Explorer.s_plan, s.Tp.Explorer.s_recovery)
        in
        let len (a, b) = List.length a + List.length b in
        fails (p', r')
        && len (p', r') <= len (s.Tp.Explorer.s_plan, s.Tp.Explorer.s_recovery)
        && len (p', r') = 1
      end)

let test_shrinker_tightens_windows () =
  (* A single essential action with a large offset: phase 2 must halve
     the offset down to the floor while the predicate keeps failing. *)
  let plan =
    [ Tp.Faultplan.at (Time.ms 800) (Tp.Faultplan.Kill_primary Tp.Faultplan.Tmf) ]
  in
  let fails (p, _) =
    List.exists
      (fun ev -> ev.Tp.Faultplan.action = Tp.Faultplan.Kill_primary Tp.Faultplan.Tmf)
      p
  in
  let (p', r'), _ = Tp.Explorer.minimize ~fails (plan, []) in
  check_int "nothing dropped" 1 (List.length p');
  check_int "recovery untouched" 0 (List.length r');
  let ev = List.hd p' in
  check_bool "offset tightened to the floor" true (ev.Tp.Faultplan.after <= Time.us 200)

let test_shrinker_respects_budget () =
  let plan =
    List.init 10 (fun i ->
        Tp.Faultplan.at (Time.ms i) (Tp.Faultplan.Kill_primary (Tp.Faultplan.Adp 0)))
  in
  let calls = ref 0 in
  let fails _ =
    incr calls;
    true
  in
  let (_, _), replays = Tp.Explorer.minimize ~max_replays:7 ~fails (plan, []) in
  check_bool "replays bounded" true (replays <= 7);
  check_int "counted every evaluation" replays !calls

(* --- Repro files --- *)

let test_repro_roundtrip () =
  let repro =
    {
      Tp.Explorer.rp_kind = Tp.Explorer.Cluster;
      rp_seed = 0xDEADBEEFCAFEL;
      rp_defenses = false;
      rp_plan =
        Tp.Faultplan.
          [ at (Time.ms 3) Wan_partition; at (Time.ms 9) Wan_heal ];
      rp_recovery = [ Tp.Faultplan.at (Time.ms 1) (Tp.Faultplan.Rail_down 0) ];
    }
  in
  let text = Json.to_string (Tp.Explorer.repro_to_json repro) in
  (match Json.parse text with
  | Error e -> Alcotest.fail ("repro unparseable: " ^ e)
  | Ok doc -> (
      match Tp.Explorer.repro_of_json doc with
      | Error e -> Alcotest.fail ("repro rejected: " ^ e)
      | Ok r -> check_bool "round-trips structurally" true (r = repro)));
  (* Unknown schema and bad action errors are named. *)
  (match Tp.Explorer.repro_of_json (Json.Obj [ ("schema", Json.String "nope") ]) with
  | Ok _ -> Alcotest.fail "bad schema accepted"
  | Error e -> check_bool "names the schema" true (contains e "nope"));
  match
    Tp.Explorer.repro_of_json
      (Json.Obj
         [
           ("schema", Json.String "odsbench-repro");
           ("kind", Json.String "warp");
           ("seed", Json.String "0x1");
           ("defenses", Json.Bool true);
           ("plan", Json.List []);
           ("recovery_plan", Json.List []);
         ])
  with
  | Ok _ -> Alcotest.fail "bad kind accepted"
  | Error e -> check_bool "names the kind" true (contains e "warp")

(* --- End to end: a tiny defended exploration is clean, and a repro
   replays deterministically --- *)

let test_small_defended_run () =
  let r = Tp.Explorer.run ~budget:3 ~seed:11 () in
  check_int "every schedule ran" 3 (List.length r.Tp.Explorer.x_schedules);
  check_bool "defended corpus is violation-free" false (Tp.Explorer.found r);
  check_bool "coverage recorded" true (r.Tp.Explorer.x_coverage <> []);
  check_bool "drill count at least budget" true (r.Tp.Explorer.x_drills >= 3);
  match Tp.Explorer.to_json r with
  | Json.Obj fields ->
      check_bool "pass flag set" true
        (List.assoc_opt "pass" fields = Some (Json.Bool true))
  | _ -> Alcotest.fail "explorer report is not an object"

let test_replay_deterministic () =
  (* Same repro, two replays: identical committed/acked/fault streams. *)
  let s = Tp.Explorer.generate ~seed:11 ~index:0 in
  let repro =
    {
      Tp.Explorer.rp_kind = s.Tp.Explorer.s_kind;
      rp_seed = s.Tp.Explorer.s_seed;
      rp_defenses = true;
      rp_plan = s.Tp.Explorer.s_plan;
      rp_recovery = s.Tp.Explorer.s_recovery;
    }
  in
  let run () =
    match Tp.Explorer.replay repro with
    | Ok (Tp.Explorer.Single rep) ->
        ( rep.Tp.Drill.committed,
          rep.Tp.Drill.acked_rows,
          rep.Tp.Drill.elapsed,
          List.map snd rep.Tp.Drill.faults )
    | Ok _ -> Alcotest.fail "pm repro replayed on the wrong platform"
    | Error e -> Alcotest.fail ("replay refused: " ^ e)
  in
  let a = run () and b = run () in
  check_bool "bit-identical replay" true (a = b)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_same_seed_identical_corpus;
      prop_disk_schedules_have_no_pm_actions;
      prop_schedules_sorted_and_in_horizon;
      prop_shrinker_minimizes;
    ]

let suite =
  [
    ( "explorer.faultplan_json",
      [
        Alcotest.test_case "every action round-trips" `Quick test_plan_json_roundtrip;
        Alcotest.test_case "errors name index and kinds" `Quick test_plan_json_errors;
      ] );
    ( "explorer.horizon",
      [
        Alcotest.test_case "validate rejects past-horizon events" `Quick
          test_validate_horizon;
        Alcotest.test_case "drill refuses a past-horizon plan" `Quick
          test_drill_run_horizon;
      ] );
    ( "explorer.oracle",
      [ Alcotest.test_case "verdict mechanics" `Quick test_oracle_verdicts ] );
    ( "explorer.generator",
      [
        Alcotest.test_case "schedules pass mode validation" `Quick
          test_generated_schedules_validate;
        Alcotest.test_case "coverage counts every event once" `Quick
          test_coverage_accounting;
      ] );
    ( "explorer.shrinker",
      [
        Alcotest.test_case "windows tighten to the floor" `Quick
          test_shrinker_tightens_windows;
        Alcotest.test_case "replay budget respected" `Quick test_shrinker_respects_budget;
      ] );
    ( "explorer.repro",
      [
        Alcotest.test_case "document round-trips" `Quick test_repro_roundtrip;
        Alcotest.test_case "replay is deterministic" `Slow test_replay_deterministic;
      ] );
    ( "explorer.run",
      [ Alcotest.test_case "small defended run is clean" `Slow test_small_defended_run ] );
    ("explorer.properties", qcheck_cases);
  ]
