(* Tests for the persistent-memory extensions: mmap-style access,
   pointer-rich structure storage, and mirror resync. *)

open Simkit
open Nsk
open Pm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

type topo = {
  sim : Sim.t;
  node : Node.t;
  npmu_a : Npmu.t;
  npmu_b : Npmu.t;
  pmm : Pmm.t;
}

let make_topo ?(capacity = 1 lsl 20) () =
  let sim = Sim.create ~seed:0x51L () in
  let node = Node.create sim ~cpus:4 () in
  let fabric = Node.fabric node in
  let npmu_a = Npmu.create sim fabric ~name:"npmu-a" ~capacity in
  let npmu_b = Npmu.create sim fabric ~name:"npmu-b" ~capacity in
  let dev_a = Pmm.device_of_npmu npmu_a in
  let dev_b = Pmm.device_of_npmu npmu_b in
  Pmm.format Pmm.default_config dev_a dev_b;
  let pmm =
    Pmm.start ~fabric ~name:"$PMM" ~primary_cpu:(Node.cpu node 0) ~backup_cpu:(Node.cpu node 1)
      ~primary_dev:dev_a ~mirror_dev:dev_b ()
  in
  { sim; node; npmu_a; npmu_b; pmm }

let client topo cpu_idx =
  Pm_client.attach ~cpu:(Node.cpu topo.node cpu_idx) ~fabric:(Node.fabric topo.node)
    ~pmm:(Pmm.server topo.pmm) ()

let with_region topo ~size f =
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h = Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"r" ~size) in
      f c h)

(* --- Pm_mmap --- *)

let test_mmap_store_load () =
  let topo = make_topo () in
  with_region topo ~size:65536 (fun c h ->
      let m = Test_util.ok_or_fail ~msg:"map" (Pm_mmap.map c h ()) in
      check_int "length" 65536 (Pm_mmap.length m);
      Test_util.check_result_ok "store" (Pm_mmap.store m ~off:1000 ~data:(Bytes.of_string "cached"));
      match Pm_mmap.load m ~off:1000 ~len:6 with
      | Ok d -> check_str "read back through cache" "cached" (Bytes.to_string d)
      | Error _ -> Alcotest.fail "load failed")

let test_mmap_not_durable_until_msync () =
  let topo = make_topo () in
  with_region topo ~size:16384 (fun c h ->
      let info = Pm_client.info h in
      let m = Test_util.ok_or_fail ~msg:"map" (Pm_mmap.map c h ()) in
      Test_util.check_result_ok "store" (Pm_mmap.store m ~off:0 ~data:(Bytes.of_string "volatile"));
      check_int "one dirty page" 1 (Pm_mmap.dirty_pages m);
      (* The devices must not have it yet. *)
      let on_device = Npmu.peek topo.npmu_a ~off:info.Pm_types.net_base ~len:8 in
      check_str "device untouched" (String.make 8 '\000') (Bytes.to_string on_device);
      Test_util.check_result_ok "msync" (Pm_mmap.msync m);
      check_int "clean after msync" 0 (Pm_mmap.dirty_pages m);
      let after = Npmu.peek topo.npmu_a ~off:info.Pm_types.net_base ~len:8 in
      check_str "durable after msync" "volatile" (Bytes.to_string after);
      let mirror = Npmu.peek topo.npmu_b ~off:info.Pm_types.net_base ~len:8 in
      check_str "mirror too" "volatile" (Bytes.to_string mirror))

let test_mmap_msync_range () =
  let topo = make_topo () in
  with_region topo ~size:32768 (fun c h ->
      let m = Test_util.ok_or_fail ~msg:"map" (Pm_mmap.map c h ()) in
      Test_util.check_result_ok "store A" (Pm_mmap.store m ~off:0 ~data:(Bytes.make 16 'a'));
      Test_util.check_result_ok "store B" (Pm_mmap.store m ~off:20000 ~data:(Bytes.make 16 'b'));
      check_int "two dirty pages" 2 (Pm_mmap.dirty_pages m);
      Test_util.check_result_ok "range sync" (Pm_mmap.msync_range m ~off:0 ~len:100);
      check_int "one still dirty" 1 (Pm_mmap.dirty_pages m))

let test_mmap_partial_store_merges () =
  let topo = make_topo () in
  with_region topo ~size:8192 (fun c h ->
      (* Write a base image directly, then patch 3 bytes via the map. *)
      Test_util.check_result_ok "base" (Pm_client.write c h ~off:0 ~data:(Bytes.of_string "0123456789"));
      let m = Test_util.ok_or_fail ~msg:"map" (Pm_mmap.map c h ()) in
      Test_util.check_result_ok "patch" (Pm_mmap.store m ~off:3 ~data:(Bytes.of_string "XYZ"));
      Test_util.check_result_ok "msync" (Pm_mmap.msync m);
      match Pm_client.read c h ~off:0 ~len:10 with
      | Ok d -> check_str "merged" "012XYZ6789" (Bytes.to_string d)
      | Error _ -> Alcotest.fail "read failed")

let test_mmap_refresh_sees_other_writer () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c1 = client topo 2 in
      let c2 = client topo 3 in
      let h1 = Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c1 ~name:"shared" ~size:8192) in
      let m = Test_util.ok_or_fail ~msg:"map" (Pm_mmap.map c1 h1 ()) in
      (* Fault the page in with the old contents. *)
      (match Pm_mmap.load m ~off:0 ~len:4 with Ok _ -> () | Error _ -> Alcotest.fail "load");
      let h2 = Test_util.ok_or_fail ~msg:"open" (Pm_client.open_region c2 ~name:"shared") in
      Test_util.check_result_ok "other writer" (Pm_client.write c2 h2 ~off:0 ~data:(Bytes.of_string "new!"));
      (* Stale until refresh. *)
      (match Pm_mmap.load m ~off:0 ~len:4 with
      | Ok d -> check_str "stale cache" (String.make 4 '\000') (Bytes.to_string d)
      | Error _ -> Alcotest.fail "load");
      Pm_mmap.refresh m;
      match Pm_mmap.load m ~off:0 ~len:4 with
      | Ok d -> check_str "fresh after refresh" "new!" (Bytes.to_string d)
      | Error _ -> Alcotest.fail "load after refresh")

let test_mmap_bounds () =
  let topo = make_topo () in
  with_region topo ~size:4096 (fun c h ->
      let m = Test_util.ok_or_fail ~msg:"map" (Pm_mmap.map c h ()) in
      (match Pm_mmap.store m ~off:4090 ~data:(Bytes.create 16) with
      | Error (Pm_types.Bad_request _) -> ()
      | _ -> Alcotest.fail "oob store accepted");
      match Pm_mmap.load m ~off:(-1) ~len:4 with
      | Error (Pm_types.Bad_request _) -> ()
      | _ -> Alcotest.fail "oob load accepted")

let test_mmap_survives_power_cycle () =
  let topo = make_topo () in
  with_region topo ~size:8192 (fun c h ->
      let m = Test_util.ok_or_fail ~msg:"map" (Pm_mmap.map c h ()) in
      Test_util.check_result_ok "synced" (Pm_mmap.store m ~off:0 ~data:(Bytes.of_string "durable!"));
      Test_util.check_result_ok "msync" (Pm_mmap.msync m);
      Test_util.check_result_ok "unsynced" (Pm_mmap.store m ~off:4096 ~data:(Bytes.of_string "doomed"));
      Npmu.power_loss topo.npmu_a;
      Npmu.power_loss topo.npmu_b;
      Npmu.power_restore topo.npmu_a;
      Npmu.power_restore topo.npmu_b;
      let m2 = Test_util.ok_or_fail ~msg:"remap" (Pm_mmap.map c h ()) in
      (match Pm_mmap.load m2 ~off:0 ~len:8 with
      | Ok d -> check_str "synced page survived" "durable!" (Bytes.to_string d)
      | Error _ -> Alcotest.fail "load");
      match Pm_mmap.load m2 ~off:4096 ~len:6 with
      | Ok d -> check_str "unsynced page lost" (String.make 6 '\000') (Bytes.to_string d)
      | Error _ -> Alcotest.fail "load 2")

(* --- Pm_struct --- *)

let sample_tree =
  Pm_struct.branch "root"
    [
      Pm_struct.branch "left"
        [ Pm_struct.leaf ~payload:(Bytes.of_string "L0") "l0"; Pm_struct.leaf "l1" ];
      Pm_struct.leaf ~payload:(Bytes.of_string "R") "right";
    ]

let rec tree_equal a b =
  String.equal a.Pm_struct.label b.Pm_struct.label
  && Bytes.equal a.Pm_struct.payload b.Pm_struct.payload
  && List.length a.Pm_struct.children = List.length b.Pm_struct.children
  && List.for_all2 tree_equal a.Pm_struct.children b.Pm_struct.children

let test_struct_roundtrip_cross_client () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let writer = client topo 2 in
      let h = Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region writer ~name:"tree" ~size:65536) in
      let stored = Test_util.ok_or_fail ~msg:"store" (Pm_struct.store writer h sample_tree) in
      check_int "node count" 5 stored.Pm_struct.nodes;
      (* A different client (different CPU = different address space)
         follows the offsets without any pointer fixup. *)
      let reader = client topo 3 in
      let h2 = Test_util.ok_or_fail ~msg:"open" (Pm_client.open_region reader ~name:"tree") in
      let back =
        Test_util.ok_or_fail ~msg:"load" (Pm_struct.load reader h2 ~root:stored.Pm_struct.root_off)
      in
      check_bool "structure identical" true (tree_equal sample_tree back))

let test_struct_selective_read () =
  let topo = make_topo () in
  with_region topo ~size:65536 (fun c h ->
      let stored = Test_util.ok_or_fail ~msg:"store" (Pm_struct.store c h sample_tree) in
      match Pm_struct.load_path c h ~root:stored.Pm_struct.root_off ~path:[ 0; 1 ] with
      | Ok (Some n, reads) ->
          check_str "reached l1" "l1" n.Pm_struct.label;
          check_bool "read fewer than all nodes" true (reads < stored.Pm_struct.nodes);
          check_int "exactly path length + 1" 3 reads
      | Ok (None, _) -> Alcotest.fail "path not found"
      | Error _ -> Alcotest.fail "load_path failed")

let test_struct_bad_path () =
  let topo = make_topo () in
  with_region topo ~size:65536 (fun c h ->
      let stored = Test_util.ok_or_fail ~msg:"store" (Pm_struct.store c h sample_tree) in
      match Pm_struct.load_path c h ~root:stored.Pm_struct.root_off ~path:[ 7 ] with
      | Ok (None, _) -> ()
      | _ -> Alcotest.fail "expected None for missing child")

let test_struct_out_of_space () =
  let topo = make_topo () in
  with_region topo ~size:8192 (fun c h ->
      let big = Pm_struct.leaf ~payload:(Bytes.create 100000) "big" in
      match Pm_struct.store c h big with
      | Error Pm_types.Out_of_space -> ()
      | _ -> Alcotest.fail "expected Out_of_space")

let prop_struct_roundtrip =
  let gen_tree =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          let label = map (Printf.sprintf "n%d") (int_bound 1000) in
          if n <= 0 then map (fun l -> Pm_struct.leaf l) label
          else
            map2
              (fun l cs -> Pm_struct.branch l cs)
              label
              (list_size (int_bound 3) (self (n / 2)))))
  in
  let arb = QCheck.make ~print:(fun n -> n.Pm_struct.label) gen_tree in
  QCheck.Test.make ~name:"pm_struct roundtrips random trees" ~count:25 arb (fun tree ->
      QCheck.assume (Pm_struct.count_nodes tree <= 80);
      let topo = make_topo () in
      Test_util.run_in topo.sim (fun () ->
          let c = client topo 2 in
          match Pm_client.create_region c ~name:"t" ~size:(1 lsl 19) with
          | Error _ -> false
          | Ok h -> (
              match Pm_struct.store c h tree with
              | Error _ -> false
              | Ok stored -> (
                  match Pm_struct.load c h ~root:stored.Pm_struct.root_off with
                  | Ok back -> tree_equal tree back
                  | Error _ -> false))))

(* --- Pmm resync --- *)

let test_resync_rebuilds_stale_mirror () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h = Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"r" ~size:8192) in
      let info = Pm_client.info h in
      (* Mirror loses power; writes land only on the primary. *)
      Npmu.power_loss topo.npmu_b;
      Test_util.check_result_ok "degraded write"
        (Pm_client.write c h ~off:0 ~data:(Bytes.of_string "only-on-a"));
      Npmu.power_restore topo.npmu_b;
      let stale = Npmu.peek topo.npmu_b ~off:info.Pm_types.net_base ~len:9 in
      check_str "mirror stale" (String.make 9 '\000') (Bytes.to_string stale);
      (* Administrative resync from the primary. *)
      (match
         Msgsys.call (Pmm.server topo.pmm) ~from:(Node.cpu topo.node 2)
           (Pmm.Resync { from_primary = true })
       with
      | Ok (Pmm.R_resynced { bytes }) -> check_bool "copied bytes" true (bytes >= 8192)
      | _ -> Alcotest.fail "resync failed");
      let rebuilt = Npmu.peek topo.npmu_b ~off:info.Pm_types.net_base ~len:9 in
      check_str "mirror rebuilt" "only-on-a" (Bytes.to_string rebuilt))

let test_primary_death_failover_and_rebuild () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h = Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"r" ~size:8192) in
      let info = Pm_client.info h in
      Test_util.check_result_ok "healthy write"
        (Pm_client.write c h ~off:0 ~data:(Bytes.of_string "mirrored!"));
      check_int "no degradation yet" 0 (Pm_client.degraded_writes c);
      (* Primary device dies.  Writes persist on the mirror alone and are
         counted as degraded; reads fail over to the mirror. *)
      Npmu.power_loss topo.npmu_a;
      Test_util.check_result_ok "degraded write"
        (Pm_client.write c h ~off:0 ~data:(Bytes.of_string "on-b-only"));
      check_int "degraded write counted" 1 (Pm_client.degraded_writes c);
      (match Pm_client.read c h ~off:0 ~len:9 with
      | Ok d -> check_str "mirror serves the read" "on-b-only" (Bytes.to_string d)
      | Error e -> Alcotest.fail ("read failed: " ^ Pm_types.error_to_string e));
      check_bool "failover counted" true (Pm_client.read_failovers c >= 1);
      let failovers_after_outage = Pm_client.read_failovers c in
      (* Power returns: the primary holds pre-outage data and must not be
         trusted until rebuilt from the surviving mirror. *)
      Npmu.power_restore topo.npmu_a;
      let stale = Npmu.peek topo.npmu_a ~off:info.Pm_types.net_base ~len:9 in
      check_str "primary is stale" "mirrored!" (Bytes.to_string stale);
      (match
         Msgsys.call (Pmm.server topo.pmm) ~from:(Node.cpu topo.node 2)
           ~timeout:(Time.sec 60) (Pmm.Resync { from_primary = false })
       with
      | Ok (Pmm.R_resynced { bytes }) -> check_bool "copied bytes" true (bytes >= 8192)
      | _ -> Alcotest.fail "resync failed");
      let rebuilt = Npmu.peek topo.npmu_a ~off:info.Pm_types.net_base ~len:9 in
      check_str "primary rebuilt from mirror" "on-b-only" (Bytes.to_string rebuilt);
      (* Full service restored: reads hit the primary again and writes
         mirror cleanly. *)
      (match Pm_client.read c h ~off:0 ~len:9 with
      | Ok d -> check_str "read after rebuild" "on-b-only" (Bytes.to_string d)
      | Error _ -> Alcotest.fail "read after rebuild failed");
      check_int "no further failovers" failovers_after_outage (Pm_client.read_failovers c);
      Test_util.check_result_ok "healthy write again"
        (Pm_client.write c h ~off:0 ~data:(Bytes.of_string "both-agai"));
      check_int "no further degradation" 1 (Pm_client.degraded_writes c);
      let on_a = Npmu.peek topo.npmu_a ~off:info.Pm_types.net_base ~len:9 in
      let on_b = Npmu.peek topo.npmu_b ~off:info.Pm_types.net_base ~len:9 in
      check_str "primary current" "both-agai" (Bytes.to_string on_a);
      check_str "mirror current" "both-agai" (Bytes.to_string on_b))

let test_resync_takes_time () =
  let topo = make_topo ~capacity:(1 lsl 21) () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let _ = Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"big" ~size:(1 lsl 20)) in
      let t0 = Sim.now topo.sim in
      (match
         Msgsys.call (Pmm.server topo.pmm) ~from:(Node.cpu topo.node 2)
           ~timeout:(Time.sec 60) (Pmm.Resync { from_primary = true })
       with
      | Ok (Pmm.R_resynced _) -> ()
      | _ -> Alcotest.fail "resync failed");
      let dt = Sim.now topo.sim - t0 in
      (* ~1 MiB read + written at 125 MB/s each way: milliseconds. *)
      check_bool "resync cost is physical" true (dt > Time.ms 10))

(* --- Volume epoch fencing --- *)

let test_takeover_bumps_epoch_and_fences () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h =
        Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"r" ~size:8192)
      in
      let info = Pm_client.info h in
      let before = Pmm.epoch topo.pmm in
      check_int "window carries the volume epoch" before info.Pm_types.epoch;
      (* Manager takeover: the new primary durably bumps the epoch and
         re-arms every device's fence before serving. *)
      Pmm.kill_primary topo.pmm;
      (* Takeover detection alone costs the pair's 500 ms delay. *)
      Sim.sleep (Time.ms 800);
      check_bool "takeover bumps the epoch" true (Pmm.epoch topo.pmm > before);
      (* A writer still descriptor-stamping the pre-takeover epoch is
         rejected at the device — no data moves. *)
      let fabric = Node.fabric topo.node in
      let probe =
        Servernet.Fabric.attach fabric ~name:"probe"
          ~store:(Servernet.Fabric.byte_store 64)
      in
      (match
         Servernet.Fabric.rdma_write fabric ~epoch:before ~src:probe
           ~dst:info.Pm_types.primary_npmu ~addr:info.Pm_types.net_base
           ~data:(Bytes.create 8)
       with
      | Error (Servernet.Fabric.Avt_error Servernet.Avt.Stale_epoch) -> ()
      | Ok () -> Alcotest.fail "stale-epoch write accepted after takeover"
      | Error _ -> Alcotest.fail "stale-epoch write failed for the wrong reason");
      check_bool "device counted the fenced write" true
        (Npmu.fenced_writes topo.npmu_a >= 1);
      (* The client transparently refreshes its grant and continues at
         the new epoch. *)
      Test_util.check_result_ok "write after refresh"
        (Pm_client.write c h ~off:0 ~data:(Bytes.of_string "fresh")))

let test_resync_fails_if_device_cycles_mid_copy () =
  let topo = make_topo ~capacity:(1 lsl 21) () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let _ =
        Test_util.ok_or_fail ~msg:"create"
          (Pm_client.create_region c ~name:"big" ~size:(1 lsl 20))
      in
      (* The ~1 MiB copy takes >10 ms of transfer time; the mirror
         power-cycles in the middle of it.  Data written before the
         cycle is suspect, so the resync must fail and the volume must
         stay degraded — a silent success here would declare a
         half-stale mirror clean. *)
      let result = Ivar.create () in
      let (_ : Sim.pid) =
        Sim.spawn topo.sim ~name:"resync" (fun () ->
            Ivar.fill result
              (Msgsys.call (Pmm.server topo.pmm) ~from:(Node.cpu topo.node 2)
                 ~timeout:(Time.sec 60)
                 (Pmm.Resync { from_primary = true })))
      in
      Sim.sleep (Time.ms 5);
      Npmu.power_loss topo.npmu_b;
      Sim.sleep (Time.ms 1);
      Npmu.power_restore topo.npmu_b;
      (match Ivar.read result with
      | Ok (Pmm.R_error _) -> ()
      | Ok (Pmm.R_resynced _) -> Alcotest.fail "resync succeeded across a power cycle"
      | Ok _ -> Alcotest.fail "unexpected resync reply"
      | Error _ -> Alcotest.fail "resync call failed");
      check_bool "volume still degraded" true (Pmm.degraded topo.pmm))

let suite =
  [
    ( "pm.mmap",
      [
        Alcotest.test_case "store/load through cache" `Quick test_mmap_store_load;
        Alcotest.test_case "durable only after msync" `Quick test_mmap_not_durable_until_msync;
        Alcotest.test_case "msync_range is selective" `Quick test_mmap_msync_range;
        Alcotest.test_case "partial store merges page" `Quick test_mmap_partial_store_merges;
        Alcotest.test_case "refresh sees other writers" `Quick test_mmap_refresh_sees_other_writer;
        Alcotest.test_case "bounds checked" `Quick test_mmap_bounds;
        Alcotest.test_case "synced pages survive power cycle" `Quick test_mmap_survives_power_cycle;
      ] );
    ( "pm.struct",
      [
        Alcotest.test_case "cross-client roundtrip, no fixup" `Quick test_struct_roundtrip_cross_client;
        Alcotest.test_case "selective path read" `Quick test_struct_selective_read;
        Alcotest.test_case "missing child path" `Quick test_struct_bad_path;
        Alcotest.test_case "out of space" `Quick test_struct_out_of_space;
        QCheck_alcotest.to_alcotest prop_struct_roundtrip;
      ] );
    ( "pm.resync",
      [
        Alcotest.test_case "rebuilds a stale mirror" `Quick test_resync_rebuilds_stale_mirror;
        Alcotest.test_case "primary death: failover, degraded writes, rebuild" `Quick
          test_primary_death_failover_and_rebuild;
        Alcotest.test_case "resync pays transfer time" `Quick test_resync_takes_time;
        Alcotest.test_case "resync fails across a device power cycle" `Quick
          test_resync_fails_if_device_cycles_mid_copy;
      ] );
    ( "pm.epoch",
      [
        Alcotest.test_case "takeover bumps the epoch and fences stale writers" `Quick
          test_takeover_bumps_epoch_and_fences;
      ] );
  ]

(* --- Pm_queue: durable SPSC ring --- *)

let test_queue_roundtrip_cross_client () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let producer = client topo 2 in
      let h =
        Test_util.ok_or_fail ~msg:"region"
          (Pm_client.create_region producer ~name:"orders" ~size:8192)
      in
      let q = Test_util.ok_or_fail ~msg:"create" (Pm_queue.create producer h) in
      List.iter
        (fun s -> Test_util.check_result_ok "enq" (Pm_queue.enqueue q (Bytes.of_string s)))
        [ "buy 100 HPQ"; "sell 50 IBM"; "buy 7 DEC" ];
      (match Pm_queue.length q with
      | Ok n -> check_int "three queued" 3 n
      | Error _ -> Alcotest.fail "length");
      (* The consumer is a different client. *)
      let consumer = client topo 3 in
      let h2 = Test_util.ok_or_fail ~msg:"open" (Pm_client.open_region consumer ~name:"orders") in
      let cq = Test_util.ok_or_fail ~msg:"attach" (Pm_queue.attach consumer h2) in
      (match Pm_queue.peek cq with
      | Ok (Some d) -> check_str "peek does not consume" "buy 100 HPQ" (Bytes.to_string d)
      | _ -> Alcotest.fail "peek");
      let pop () =
        match Pm_queue.dequeue cq with
        | Ok (Some d) -> Bytes.to_string d
        | _ -> Alcotest.fail "dequeue"
      in
      check_str "fifo 1" "buy 100 HPQ" (pop ());
      check_str "fifo 2" "sell 50 IBM" (pop ());
      check_str "fifo 3" "buy 7 DEC" (pop ());
      match Pm_queue.dequeue cq with
      | Ok None -> ()
      | _ -> Alcotest.fail "expected empty")

let test_queue_survives_power_cycle () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h = Test_util.ok_or_fail ~msg:"region" (Pm_client.create_region c ~name:"dq" ~size:8192) in
      let q = Test_util.ok_or_fail ~msg:"create" (Pm_queue.create c h) in
      Test_util.check_result_ok "enq1" (Pm_queue.enqueue q (Bytes.of_string "order-1"));
      Test_util.check_result_ok "enq2" (Pm_queue.enqueue q (Bytes.of_string "order-2"));
      (match Pm_queue.dequeue q with
      | Ok (Some _) -> ()
      | _ -> Alcotest.fail "pre-crash dequeue");
      Npmu.power_loss topo.npmu_a;
      Npmu.power_loss topo.npmu_b;
      Npmu.power_restore topo.npmu_a;
      Npmu.power_restore topo.npmu_b;
      let q2 = Test_util.ok_or_fail ~msg:"reattach" (Pm_queue.attach c h) in
      (* Order-1 was consumed durably; order-2 is still there, once. *)
      (match Pm_queue.dequeue q2 with
      | Ok (Some d) -> check_str "survivor" "order-2" (Bytes.to_string d)
      | _ -> Alcotest.fail "post-crash dequeue");
      match Pm_queue.dequeue q2 with
      | Ok None -> ()
      | _ -> Alcotest.fail "consumed element redelivered")

let test_queue_torn_enqueue_invisible () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h = Test_util.ok_or_fail ~msg:"region" (Pm_client.create_region c ~name:"tq" ~size:8192) in
      let q = Test_util.ok_or_fail ~msg:"create" (Pm_queue.create c h) in
      Test_util.check_result_ok "enq" (Pm_queue.enqueue q (Bytes.of_string "committed"));
      (* A crashed producer wrote a frame but never flipped the tail. *)
      Test_util.check_result_ok "torn bytes"
        (Pm_client.write c h ~off:(192 + 17) ~data:(Bytes.of_string "\xFF\xFF\xFFgarbage"));
      (match Pm_queue.length q with
      | Ok n -> check_int "only the committed element" 1 n
      | Error _ -> Alcotest.fail "length");
      match Pm_queue.dequeue q with
      | Ok (Some d) -> check_str "clean pop" "committed" (Bytes.to_string d)
      | _ -> Alcotest.fail "dequeue")

let test_queue_wraps_and_fills () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      (* 256 bytes of ring: two 100-byte records fit, a third does not. *)
      let h = Test_util.ok_or_fail ~msg:"region" (Pm_client.create_region c ~name:"wq" ~size:448) in
      let q = Test_util.ok_or_fail ~msg:"create" (Pm_queue.create c h) in
      check_int "capacity" 256 (Pm_queue.capacity_bytes q);
      let payload i = Bytes.make 100 (Char.chr (Char.code 'a' + i)) in
      Test_util.check_result_ok "e0" (Pm_queue.enqueue q (payload 0));
      Test_util.check_result_ok "e1" (Pm_queue.enqueue q (payload 1));
      (match Pm_queue.enqueue q (payload 2) with
      | Error Pm_types.Out_of_space -> ()
      | _ -> Alcotest.fail "overfill accepted");
      (* Drain one, then the next enqueue wraps across the ring edge. *)
      (match Pm_queue.dequeue q with Ok (Some _) -> () | _ -> Alcotest.fail "drain");
      Test_util.check_result_ok "wrapping enqueue" (Pm_queue.enqueue q (payload 2));
      (match Pm_queue.dequeue q with
      | Ok (Some d) -> check_str "b's" (Bytes.to_string (payload 1)) (Bytes.to_string d)
      | _ -> Alcotest.fail "pop 1");
      match Pm_queue.dequeue q with
      | Ok (Some d) -> check_str "wrapped record intact" (Bytes.to_string (payload 2)) (Bytes.to_string d)
      | _ -> Alcotest.fail "pop 2")

let prop_queue_matches_model =
  QCheck.Test.make ~name:"pm_queue behaves like Queue" ~count:15
    (QCheck.make
       ~print:(fun l -> string_of_int (List.length l))
       QCheck.Gen.(list_size (int_range 1 60) (pair bool (int_range 1 40))))
    (fun ops ->
      let topo = make_topo () in
      Test_util.run_in topo.sim (fun () ->
          let c = client topo 2 in
          match Pm_client.create_region c ~name:"mq" ~size:16384 with
          | Error _ -> false
          | Ok h -> (
              match Pm_queue.create c h with
              | Error _ -> false
              | Ok q ->
                  let model : Bytes.t Queue.t = Queue.create () in
                  let ok = ref true in
                  List.iteri
                    (fun i (is_enq, len) ->
                      if is_enq then begin
                        let data = Bytes.make len (Char.chr (65 + (i mod 26))) in
                        match Pm_queue.enqueue q data with
                        | Ok () -> Queue.push data model
                        | Error Pm_types.Out_of_space ->
                            if Queue.length model = 0 then ok := false
                        | Error _ -> ok := false
                      end
                      else
                        match (Pm_queue.dequeue q, Queue.take_opt model) with
                        | Ok None, None -> ()
                        | Ok (Some a), Some b -> if not (Bytes.equal a b) then ok := false
                        | _ -> ok := false)
                    ops;
                  !ok)))

let queue_cases =
  [
    Alcotest.test_case "cross-client FIFO roundtrip" `Quick test_queue_roundtrip_cross_client;
    Alcotest.test_case "durable across power cycle" `Quick test_queue_survives_power_cycle;
    Alcotest.test_case "torn enqueue invisible" `Quick test_queue_torn_enqueue_invisible;
    Alcotest.test_case "wrap and overfill" `Quick test_queue_wraps_and_fills;
    QCheck_alcotest.to_alcotest prop_queue_matches_model;
  ]

let suite = suite @ [ ("pm.queue", queue_cases) ]
