(* Tests for the observability layer: spans, the metrics registry, the
   trace ring, and the latency breakdowns built on them. *)

open Simkit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- Span: nesting, ordering, parents --- *)

(* A hand-cranked clock so span timestamps are exact. *)
let manual_clock () =
  let now = ref 0 in
  ((fun () -> !now), fun t -> now := t)

let test_span_disabled_is_free () =
  let c = Span.create () in
  let sp = Span.start c "op" in
  check_bool "null span" true (Span.is_null sp);
  Span.annotate sp ~key:"k" "v";
  Span.finish c sp;
  check_int "nothing recorded" 0 (Span.count c);
  check_bool "shared null" true (Span.is_null Span.null)

let test_span_nesting_and_order () =
  let clock, set = manual_clock () in
  let c = Span.create ~clock () in
  Span.enable c;
  set 100;
  let outer = Span.start c ~track:"tmf" "commit" in
  set 200;
  let inner = Span.start c ~track:"tmf" ~parent:outer "flush" in
  Span.annotate inner ~key:"records" "8";
  set 350;
  Span.finish c inner;
  set 500;
  Span.finish c outer;
  let recs = Span.records c in
  check_int "two spans" 2 (List.length recs);
  (* Ordered by start time: outer first even though it finished last. *)
  let o = List.nth recs 0 and i = List.nth recs 1 in
  check_string "outer name" "commit" o.Span.r_name;
  check_string "inner name" "flush" i.Span.r_name;
  check_int "outer start" 100 o.Span.r_start;
  check_int "outer end" 500 o.Span.r_end;
  check_int "inner start" 200 i.Span.r_start;
  check_int "inner end" 350 i.Span.r_end;
  check_bool "inner parented on outer" true (i.Span.r_parent = Some o.Span.r_id);
  check_bool "outer has no parent" true (o.Span.r_parent = None);
  check_bool "args kept" true (i.Span.r_args = [ ("records", "8") ])

let test_span_double_finish_and_capacity () =
  let clock, set = manual_clock () in
  let c = Span.create ~clock ~capacity:2 () in
  Span.enable c;
  let spans =
    List.map
      (fun i ->
        set (i * 10);
        Span.start c (Printf.sprintf "s%d" i))
      [ 1; 2; 3 ]
  in
  set 100;
  List.iter (fun sp -> Span.finish c sp) spans;
  List.iter (fun sp -> Span.finish c sp) spans;
  check_int "capacity bounds records" 2 (Span.count c);
  check_int "third span dropped" 1 (Span.dropped c);
  Span.clear c;
  check_int "clear empties" 0 (Span.count c)

let test_span_chrome_json_golden () =
  let clock, set = manual_clock () in
  let c = Span.create ~clock () in
  Span.enable c;
  set 1000;
  let sp = Span.start c ~track:"pm" "pm.write" in
  Span.annotate sp ~key:"len" "64";
  set 3000;
  Span.finish c sp;
  let expected =
    "{\"displayTimeUnit\":\"ns\",\"traceEvents\":["
    ^ "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":0,"
    ^ "\"args\":{\"name\":\"pm\"}},"
    ^ "{\"ph\":\"X\",\"name\":\"pm.write\",\"cat\":\"sim\",\"pid\":0,\"tid\":0,"
    ^ "\"ts\":1,\"dur\":2,\"args\":{\"len\":\"64\"}}]}"
  in
  check_string "chrome trace" expected (Span.to_chrome_json c)

let test_span_cross_track_flow () =
  let clock, set = manual_clock () in
  let c = Span.create ~clock () in
  Span.enable c;
  set 0;
  let caller = Span.start c ~track:"client" "txn" in
  set 10;
  let callee = Span.start c ~track:"tmf" ~parent:caller "tmf.commit" in
  set 20;
  Span.finish c callee;
  set 30;
  Span.finish c caller;
  let json = Span.to_chrome_json c in
  (* A cross-track parent must emit a flow arrow pair. *)
  let has sub =
    let n = String.length sub and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "flow start" true (has "\"ph\":\"s\"");
  check_bool "flow finish" true (has "\"ph\":\"f\"")

(* --- Trace ring buffer --- *)

let test_trace_ring_wraparound () =
  let tr = Trace.create ~capacity:3 () in
  Trace.enable tr;
  for i = 1 to 5 do
    Trace.event tr ~time:(i * 100) ~tag:"t" (Printf.sprintf "e%d" i)
  done;
  let entries = Trace.entries tr in
  check_int "ring keeps capacity" 3 (List.length entries);
  (* Oldest first, and the oldest two were overwritten. *)
  let msgs = List.map (fun (_, _, m) -> m) entries in
  check_bool "oldest-first survivors" true (msgs = [ "e3"; "e4"; "e5" ]);
  let times = List.map (fun (t, _, _) -> t) entries in
  check_bool "times ascend" true (times = [ 300; 400; 500 ])

let test_span_trace_sink () =
  let clock, set = manual_clock () in
  let c = Span.create ~clock () in
  let tr = Trace.create () in
  Trace.enable tr;
  Span.attach_trace c tr;
  Span.enable c;
  set 7;
  let sp = Span.start c "op" in
  set 9;
  Span.finish c sp;
  let entries = Trace.entries tr in
  check_int "begin + end mirrored" 2 (List.length entries);
  List.iter (fun (_, tag, _) -> check_string "tagged span" "span" tag) entries;
  let _, _, first = List.hd entries in
  check_bool "message names the span" true (first = "begin op#0")

(* --- Stat: total on empty --- *)

let test_stat_empty_total () =
  let st = Stat.create ~name:"empty" () in
  check_bool "percentile nan" true (Float.is_nan (Stat.percentile st 0.99));
  let s = Stat.summary st in
  check_int "n zero" 0 s.Stat.n;
  check_bool "mean zero" true (s.Stat.mean = 0.0);
  (* Must not raise. *)
  let (_ : string) = Format.asprintf "%a" Stat.pp_summary st in
  ()

(* --- Metrics registry --- *)

let test_metrics_find_or_create () =
  let m = Metrics.create () in
  let a = Metrics.stat m "adp.flush_latency" in
  let b = Metrics.stat m "adp.flush_latency" in
  check_bool "same instrument" true (a == b);
  Stat.add a 10.0;
  check_bool "shared samples" true (Stat.count b = 1);
  let c1 = Metrics.counter m "msg.requests" in
  Stat.Counter.incr c1;
  check_int "counter via registry" 1 (Stat.Counter.get (Metrics.counter m "msg.requests"));
  check_bool "kind conflict raises" true
    (match Metrics.stat m "msg.requests" with
    | (_ : Stat.t) -> false
    | exception Invalid_argument _ -> true);
  check_bool "paths sorted" true
    (Metrics.paths m = [ "adp.flush_latency"; "msg.requests" ])

let test_metrics_dump_never_aborts () =
  let m = Metrics.create () in
  let (_ : Stat.t) = Metrics.stat m "never.recorded" in
  Metrics.register_gauge m "a.gauge" (fun () -> 42.0);
  (* pp_table over empty instruments must not raise. *)
  let table = Format.asprintf "%a" Metrics.pp_table m in
  check_bool "table mentions path" true (String.length table > 0);
  let json = Metrics.to_json m in
  let has sub =
    let n = String.length sub and l = String.length json in
    let rec go i = i + n <= l && (String.sub json i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "json has stat path" true (has "never.recorded");
  check_bool "json has gauge value" true (has "a.gauge")

(* --- End to end: an instrumented hot-stock cell --- *)

let test_cell_metrics_populate () =
  let obs = Obs.create () in
  let (_ : Workloads.Figures.cell) =
    Workloads.Figures.run_cell ~obs ~mode:Tp.System.Disk_audit ~drivers:1
      ~inserts_per_txn:4 ~records_per_driver:40 ()
  in
  let m = Obs.metrics obs in
  let n path = Stat.count (Metrics.stat m path) in
  check_int "one response per txn" 10 (n "txn.response_ns");
  check_int "one commit span stat per txn" 10 (n "tmf.commit_ns");
  check_bool "audit flushes seen" true (n "adp.flush_latency" > 0);
  check_bool "log writes seen" true (n "log.write_ns" > 0);
  check_bool "disk service seen" true (n "disk.service_ns" > 0);
  check_bool "message hops seen" true (n "msg.hop_ns" > 0)

let test_cell_trace_tree () =
  let obs = Obs.create () in
  Span.enable (Obs.spans obs);
  let (_ : Workloads.Figures.cell) =
    Workloads.Figures.run_cell ~obs ~mode:Tp.System.Disk_audit ~drivers:1
      ~inserts_per_txn:4 ~records_per_driver:20 ()
  in
  let spans = Obs.spans obs in
  check_bool "spans recorded" true (Span.count spans > 0);
  let recs = Span.records spans in
  let by_name name = List.filter (fun r -> r.Span.r_name = name) recs in
  check_int "one root per txn" 5 (List.length (by_name "txn"));
  check_int "one tmf.commit per txn" 5 (List.length (by_name "tmf.commit"));
  (* Every tmf.commit must be parented (via the message envelope) under a
     client-side span of the same trace tree. *)
  let ids = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace ids r.Span.r_id r) recs;
  List.iter
    (fun r ->
      match r.Span.r_parent with
      | None -> Alcotest.fail "tmf.commit without a caller span"
      | Some p ->
          let parent = Hashtbl.find ids p in
          check_string "commit hangs under the client" "client" parent.Span.r_track)
    (by_name "tmf.commit");
  let json = Span.to_chrome_json spans in
  let has sub =
    let n = String.length sub and l = String.length json in
    let rec go i = i + n <= l && (String.sub json i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "chrome wrapper" true (has "\"traceEvents\"");
  check_bool "contains commit spans" true (has "\"tmf.commit\"")

let test_breakdown_flush_shares () =
  let b = Workloads.Figures.breakdown ~records_per_driver:300 ~drivers:1 ~boxcar:8 () in
  check_bool "commits happened (disk)" true (b.Workloads.Figures.bd_disk.Workloads.Figures.b_commits > 0);
  check_bool "commits happened (pm)" true (b.Workloads.Figures.bd_pm.Workloads.Figures.b_commits > 0);
  (* The paper's claim as an assertion: waiting on trail durability
     dominates the disk-mode commit but not the PM-mode one. *)
  check_bool "disk flush share dominates" true (b.Workloads.Figures.bd_disk_flush_share > 0.5);
  check_bool "pm flush share is small" true (b.Workloads.Figures.bd_pm_flush_share < 0.2);
  check_bool "disk > pm" true
    (b.Workloads.Figures.bd_disk_flush_share > b.Workloads.Figures.bd_pm_flush_share);
  (* Shares of response time must be sane fractions. *)
  List.iter
    (fun m ->
      List.iter
        (fun st ->
          check_bool "share in [0,1]" true
            (st.Workloads.Figures.stage_share >= 0.0 && st.Workloads.Figures.stage_share <= 1.0))
        m.Workloads.Figures.b_stages)
    [ b.Workloads.Figures.bd_disk; b.Workloads.Figures.bd_pm ]

let suite =
  [
    ( "obs.span",
      [
        Alcotest.test_case "disabled collector is free" `Quick test_span_disabled_is_free;
        Alcotest.test_case "nesting, ordering, parents" `Quick test_span_nesting_and_order;
        Alcotest.test_case "double finish and capacity" `Quick test_span_double_finish_and_capacity;
        Alcotest.test_case "chrome json golden" `Quick test_span_chrome_json_golden;
        Alcotest.test_case "cross-track flow arrows" `Quick test_span_cross_track_flow;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "ring wraparound keeps newest" `Quick test_trace_ring_wraparound;
        Alcotest.test_case "span begin/end mirrored into trace" `Quick test_span_trace_sink;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "empty stat never aborts" `Quick test_stat_empty_total;
        Alcotest.test_case "find-or-create shares instruments" `Quick test_metrics_find_or_create;
        Alcotest.test_case "dumps never abort" `Quick test_metrics_dump_never_aborts;
      ] );
    ( "obs.end_to_end",
      [
        Alcotest.test_case "cell populates the registry" `Quick test_cell_metrics_populate;
        Alcotest.test_case "cell produces a span tree" `Quick test_cell_trace_tree;
        Alcotest.test_case "breakdown: flush dominates disk only" `Quick
          test_breakdown_flush_shares;
      ] );
  ]
