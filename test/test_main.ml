let () =
  Alcotest.run "pmods"
    (Test_simkit.suite @ Test_servernet.suite @ Test_diskio.suite @ Test_nsk.suite
   @ Test_pm.suite @ Test_pm_ext.suite @ Test_pm_index.suite @ Test_pm_kv.suite @ Test_btree.suite @ Test_tp.suite @ Test_tp_components.suite @ Test_entity.suite @ Test_workloads.suite @ Test_properties.suite @ Test_edges.suite @ Test_edges2.suite @ Test_obs.suite @ Test_timeseries.suite @ Test_integrity.suite @ Test_prof.suite @ Test_grayfail.suite @ Test_critpath.suite
   @ Test_overload.suite @ Test_explorer.suite)
