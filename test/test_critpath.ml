(* Tests for causal commit tracing: cross-node trace propagation, the
   critical-path analyzer, the failure flight recorder, and the
   zero-cost disabled path of the whole layer. *)

open Simkit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* The global telemetry level leaks across tests unless restored. *)
let with_level l f =
  let saved = Obs.level () in
  Obs.set_level l;
  Fun.protect ~finally:(fun () -> Obs.set_level saved) f

let manual_clock () =
  let now = ref 0 in
  ((fun () -> !now), fun t -> now := t)

(* --- Critpath: exact tiling of a hand-built DAG --- *)

(* One root [0,1000] with a backdated child (queue 50), a second child
   that links an untraced flush span, and gaps the root keeps.  Every
   nanosecond must land in exactly one hop and the hop totals must sum
   to the measured ack latency. *)
let test_critpath_exact_tiling () =
  with_level Obs.Spans @@ fun () ->
  let clock, set = manual_clock () in
  let c = Span.create ~clock () in
  Span.enable c;
  let cp = Critpath.create () in
  Critpath.attach cp c;
  set 0;
  let root = Span.root c ~track:"client" "txn" in
  (* Untraced flush span, finished before the waiter that links it. *)
  set 520;
  let flush = Span.start c ~track:"adp" "adp.flush" in
  set 580;
  Span.finish c flush;
  (* Child A: opens at 150, backdated 50 ns over its inbox wait. *)
  set 150;
  let a = Span.start c ~track:"dp2" ~parent:root "dp2.insert" in
  Span.note_queue a 50;
  set 400;
  Span.finish c a;
  (* Child B covers [500,900] and piggybacked on the flush. *)
  set 500;
  let b = Span.start c ~track:"tmf" ~parent:root "tmf.commit" in
  Span.link b flush;
  set 900;
  Span.finish c b;
  set 1000;
  Span.finish c root;
  check_int "one trace finalized" 1 (Critpath.txns cp);
  let hops = Critpath.hops cp in
  let total =
    List.fold_left (fun acc h -> acc + h.Critpath.h_queue + h.Critpath.h_service) 0 hops
  in
  check_int "hops tile the ack exactly" 1000 total;
  let find name =
    match List.find_opt (fun h -> h.Critpath.h_name = name) hops with
    | Some h -> h
    | None -> Alcotest.fail ("missing hop " ^ name)
  in
  let a_hop = find "dp2:dp2.insert" in
  check_int "backdated wait is queue" 50 a_hop.Critpath.h_queue;
  check_int "A service" 250 a_hop.Critpath.h_service;
  let f_hop = find "adp:adp.flush" in
  check_int "linked flush claims its interval" 60 f_hop.Critpath.h_service;
  let b_hop = find "tmf:tmf.commit" in
  check_int "B keeps its interval minus the flush" 340 b_hop.Critpath.h_service;
  let r_hop = find "client:txn" in
  (* [0,100) before the backdated A, (400,500) between children, (900,1000]. *)
  check_int "root keeps the gaps" 300 r_hop.Critpath.h_service;
  (match Critpath.exemplars cp with
  | [ ex ] ->
      check_int "exemplar ack" 1000 ex.Critpath.ex_ack;
      let sum =
        List.fold_left
          (fun acc h -> acc + h.Critpath.xh_queue + h.Critpath.xh_service)
          0 ex.Critpath.ex_hops
      in
      check_int "exemplar hops sum to ack" 1000 sum;
      check_bool "exemplar keeps the linked flush DAG" true
        (List.exists (fun r -> r.Span.r_name = "adp.flush") ex.Critpath.ex_records)
  | exs -> Alcotest.fail (Printf.sprintf "expected 1 exemplar, got %d" (List.length exs)))

(* --- Propagation: same trace id on both sides of a remote 2PC hop --- *)

let test_trace_crosses_remote_2pc_hop () =
  with_level Obs.Spans @@ fun () ->
  let obs = Obs.create () in
  Span.enable (Obs.spans obs);
  let sim = Sim.create ~seed:0x2FCL () in
  let committed = ref 0 in
  Test_util.run_in sim (fun () ->
      let cfg =
        {
          Tp.System.pm_config with
          Tp.System.log_mode = Tp.System.Pm_audit;
          txn_state_in_pm = true;
        }
      in
      let cluster = Tp.Cluster.build sim ~nodes:2 ~wan_latency:(Time.us 100) ~obs cfg in
      let files = cfg.Tp.System.files in
      for txn = 0 to 3 do
        let dtx = Tp.Dtx.begin_dtx cluster ~coordinator:0 ~cpu:0 in
        List.iter
          (fun i ->
            Test_util.check_result_ok "insert"
              (Tp.Dtx.insert dtx ~node:(i mod 2) ~file:(i mod files)
                 ~key:((txn * 10) + i) ~len:256))
          [ 0; 1; 2; 3 ];
        match Tp.Dtx.commit dtx with Ok () -> incr committed | Error _ -> ()
      done);
  check_bool "transactions committed two-phase" true (!committed >= 1);
  let recs = Span.records (Obs.spans obs) in
  let roots =
    List.filter
      (fun r -> r.Span.r_parent = None && r.Span.r_trace >= 0 && r.Span.r_name = "txn")
      recs
  in
  check_bool "client roots minted traces" true (roots <> []);
  let root_traces = List.map (fun r -> r.Span.r_trace) roots in
  let by_id = Hashtbl.create 256 in
  List.iter (fun r -> Hashtbl.replace by_id r.Span.r_id r) recs;
  let server_side name = List.filter (fun r -> r.Span.r_name = name) recs in
  let prepares = server_side "tmf.prepare" and decides = server_side "tmf.decide" in
  check_bool "remote prepares recorded" true (prepares <> []);
  check_bool "remote decides recorded" true (decides <> []);
  List.iter
    (fun r ->
      check_bool
        (Printf.sprintf "%s carries a trace" r.Span.r_name)
        true (r.Span.r_trace >= 0);
      check_bool
        (Printf.sprintf "%s trace belongs to a client root" r.Span.r_name)
        true
        (List.mem r.Span.r_trace root_traces);
      (* The hop crossed the interconnect via the message envelope: the
         server-side span hangs under a client-track span of the same
         trace. *)
      match r.Span.r_parent with
      | None -> Alcotest.fail (r.Span.r_name ^ " has no caller")
      | Some p ->
          let parent = Hashtbl.find by_id p in
          check_string "caller is client-side" "client" parent.Span.r_track;
          check_int "parent shares the trace" r.Span.r_trace parent.Span.r_trace)
    (prepares @ decides)

(* --- Propagation: a batched txn records the flush it piggybacked on --- *)

let test_group_commit_batch_links_flush () =
  with_level Obs.Spans @@ fun () ->
  let obs = Obs.create () in
  Span.enable (Obs.spans obs);
  let (_ : Workloads.Figures.cell) =
    Workloads.Figures.run_cell ~obs ~mode:Tp.System.Disk_audit ~drivers:2
      ~inserts_per_txn:4 ~records_per_driver:40 ()
  in
  let recs = Span.records (Obs.spans obs) in
  let by_id = Hashtbl.create 256 in
  List.iter (fun r -> Hashtbl.replace by_id r.Span.r_id r) recs;
  let waits = List.filter (fun r -> r.Span.r_name = "adp.flush_wait") recs in
  check_bool "flush waits recorded" true (waits <> []);
  let linked = List.filter (fun r -> List.mem_assoc "link" r.Span.r_args) waits in
  check_bool "some commit rode a batch flush" true (linked <> []);
  List.iter
    (fun r ->
      check_bool "waiter keeps its txn trace" true (r.Span.r_trace >= 0);
      let target = int_of_string (List.assoc "link" r.Span.r_args) in
      match Hashtbl.find_opt by_id target with
      | None -> Alcotest.fail "link target not recorded"
      | Some f -> check_string "link names the batch flush" "adp.flush" f.Span.r_name)
    linked

(* --- Propagation: fence-refresh retry stays in the caller's trace --- *)

let test_fence_refresh_retry_shares_trace () =
  with_level Obs.Spans @@ fun () ->
  let obs = Obs.create () in
  Span.enable (Obs.spans obs);
  let sim = Sim.create ~seed:0x51L () in
  let node = Nsk.Node.create sim ~cpus:4 () in
  let fabric = Nsk.Node.fabric node in
  let npmu_a = Pm.Npmu.create sim fabric ~name:"npmu-a" ~capacity:(1 lsl 20) in
  let npmu_b = Pm.Npmu.create sim fabric ~name:"npmu-b" ~capacity:(1 lsl 20) in
  let dev_a = Pm.Pmm.device_of_npmu npmu_a in
  let dev_b = Pm.Pmm.device_of_npmu npmu_b in
  Pm.Pmm.format Pm.Pmm.default_config dev_a dev_b;
  let pmm =
    Pm.Pmm.start ~fabric ~name:"$PMM" ~primary_cpu:(Nsk.Node.cpu node 0)
      ~backup_cpu:(Nsk.Node.cpu node 1) ~primary_dev:dev_a ~mirror_dev:dev_b ()
  in
  Test_util.run_in sim (fun () ->
      let c =
        Pm.Pm_client.attach ~cpu:(Nsk.Node.cpu node 2) ~fabric
          ~pmm:(Pm.Pmm.server pmm) ~obs ()
      in
      let h =
        Test_util.ok_or_fail ~msg:"create"
          (Pm.Pm_client.create_region c ~name:"r" ~size:8192)
      in
      (* Manager takeover bumps the volume epoch; the handle still
         carries the old grant, so the next write bounces off the fence,
         refreshes, and retries. *)
      Pm.Pmm.kill_primary pmm;
      Sim.sleep (Time.ms 800);
      let spans = Obs.spans obs in
      let root = Span.root spans ~track:"client" "txn" in
      Test_util.check_result_ok "write lands after the refresh"
        (Pm.Pm_client.write ~span:root c h ~off:0 ~data:(Bytes.of_string "fresh"));
      Span.finish spans root;
      check_bool "the first attempt was fenced" true (Pm.Pm_client.fenced_writes c >= 1);
      let trace = Span.trace_of root in
      check_bool "root minted a trace" true (trace >= 0);
      let writes =
        List.filter
          (fun r -> r.Span.r_name = "pm.write" && r.Span.r_trace = trace)
          (Span.records spans)
      in
      check_bool
        (Printf.sprintf "fenced attempt and retry share the trace (%d spans)"
           (List.length writes))
        true
        (List.length writes >= 2))

(* --- Determinism: same seed, byte-identical critpath report --- *)

let test_critpath_deterministic () =
  with_level Obs.Spans @@ fun () ->
  let run () =
    let r =
      Workloads.Causal.run_mode ~seed:0xD07L ~drivers:2 ~inserts_per_txn:4
        ~records_per_driver:80 ~mode:Tp.System.Pm_audit ()
    in
    check_bool "commits happened" true (r.Workloads.Causal.cp_committed > 0);
    Json.to_string (Critpath.to_json r.Workloads.Causal.cp)
  in
  let a = run () and b = run () in
  check_bool "same seed, identical report" true (String.equal a b)

(* --- Flight recorder: bounded rings, oldest evicted --- *)

let test_flightrec_rings_bounded () =
  with_level Obs.Spans @@ fun () ->
  let clock, set = manual_clock () in
  let c = Span.create ~clock () in
  Span.enable c;
  let fr = Flightrec.create ~spans:4 ~marks:2 () in
  Flightrec.attach fr c;
  for i = 1 to 10 do
    set (i * 100);
    let sp = Span.start c ~track:"t" (Printf.sprintf "op%d" i) in
    set ((i * 100) + 50);
    Span.finish c sp
  done;
  Flightrec.mark fr ~time:1 "first";
  Flightrec.mark fr ~time:2 "second";
  Flightrec.mark fr ~time:3 "third";
  check_int "every span counted" 10 (Flightrec.span_count fr);
  check_int "every mark counted" 3 (Flightrec.mark_count fr);
  let recent = Flightrec.recent_spans fr in
  check_int "span ring keeps the last four" 4 (List.length recent);
  check_string "oldest survivor" "op7" (List.nth recent 0).Span.r_name;
  check_string "newest last" "op10" (List.nth recent 3).Span.r_name;
  let marks = Flightrec.recent_marks fr in
  check_int "mark ring bounded" 2 (List.length marks);
  check_bool "oldest mark evicted" true
    (List.for_all (fun (_, label) -> label <> "first") marks);
  let json = Json.to_string (Flightrec.to_json fr) in
  let has sub =
    let n = String.length sub and l = String.length json in
    let rec go i = i + n <= l && (String.sub json i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "dump keeps span names" true (has "op10");
  check_bool "dump keeps totals" true (has "\"spans_seen\":10");
  check_bool "dump keeps marks" true (has "third")

(* --- Zero-cost at Off: the whole tracing layer must not allocate --- *)

let test_off_level_allocates_nothing () =
  with_level Obs.Off @@ fun () ->
  let c = Span.create () in
  (* [enable] forces the level up; undo that to test the gate itself. *)
  Span.enable c;
  Obs.set_level Obs.Off;
  let cp = Critpath.create () in
  Critpath.attach cp c;
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    let root = Span.root c ~track:"client" "txn" in
    (* Hot callers forward the parent as an option, guarded on null, so
       the Off path boxes nothing. *)
    let parent = if Span.is_null root then None else Some root in
    let sp = Span.start c ~track:"tmf" ?parent "tmf.commit" in
    Span.annotate sp ~key:"k" "v";
    Span.note_queue sp 25;
    Span.mark_queue sp 5;
    Span.link sp root;
    Span.finish c sp;
    Span.finish c root
  done;
  let delta = Gc.minor_words () -. w0 in
  (* The measurement itself boxes a couple of floats; the 10k-iteration
     loop must contribute nothing. *)
  check_bool
    (Printf.sprintf "Off loop allocated %.0f words" delta)
    true (delta < 64.0);
  check_int "no spans recorded" 0 (Span.count c);
  check_int "nothing reached the analyzer" 0 (Critpath.txns cp)

let suite =
  [
    ( "critpath",
      [
        Alcotest.test_case "exact tiling of a hand-built DAG" `Quick
          test_critpath_exact_tiling;
        Alcotest.test_case "trace crosses the remote 2PC hop" `Quick
          test_trace_crosses_remote_2pc_hop;
        Alcotest.test_case "batched txn links its group-commit flush" `Quick
          test_group_commit_batch_links_flush;
        Alcotest.test_case "fence-refresh retry shares the trace" `Quick
          test_fence_refresh_retry_shares_trace;
        Alcotest.test_case "same seed, identical report" `Quick
          test_critpath_deterministic;
        Alcotest.test_case "flight recorder rings are bounded" `Quick
          test_flightrec_rings_bounded;
        Alcotest.test_case "Off level allocates nothing" `Quick
          test_off_level_allocates_nothing;
      ] );
  ]
