(* Tests for the ServerNet fabric simulation. *)

open Simkit
open Servernet

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- AVT --- *)

let test_avt_map_translate () =
  let avt = Avt.create () in
  Test_util.check_result_ok "map"
    (Avt.map avt ~net_base:0x1000 ~length:0x1000 ~phys_base:0x8000
       ~access:(Avt.read_write Avt.Any_initiator));
  match Avt.translate avt ~initiator:3 ~op:`Write ~addr:0x1800 ~len:16 with
  | Ok phys -> check_int "translated" 0x8800 phys
  | Error _ -> Alcotest.fail "translate failed"

let test_avt_unmapped () =
  let avt = Avt.create () in
  match Avt.translate avt ~initiator:0 ~op:`Read ~addr:0x10 ~len:4 with
  | Error Avt.Unmapped -> ()
  | _ -> Alcotest.fail "expected Unmapped"

let test_avt_access_control () =
  let avt = Avt.create () in
  Test_util.check_result_ok "map"
    (Avt.map avt ~net_base:0 ~length:256 ~phys_base:0
       ~access:{ Avt.readers = Avt.Any_initiator; writers = Avt.Initiators [ 7 ] });
  (match Avt.translate avt ~initiator:7 ~op:`Write ~addr:0 ~len:8 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "authorized writer rejected");
  (match Avt.translate avt ~initiator:8 ~op:`Write ~addr:0 ~len:8 with
  | Error Avt.Access_denied -> ()
  | _ -> Alcotest.fail "unauthorized writer accepted");
  match Avt.translate avt ~initiator:8 ~op:`Read ~addr:0 ~len:8 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "any-reader rejected"

let test_avt_window_crossing () =
  let avt = Avt.create () in
  Test_util.check_result_ok "map"
    (Avt.map avt ~net_base:0 ~length:64 ~phys_base:0 ~access:(Avt.read_write Avt.Any_initiator));
  match Avt.translate avt ~initiator:0 ~op:`Read ~addr:60 ~len:8 with
  | Error Avt.Crosses_window -> ()
  | _ -> Alcotest.fail "expected Crosses_window"

let test_avt_overlap_rejected () =
  let avt = Avt.create () in
  Test_util.check_result_ok "map"
    (Avt.map avt ~net_base:100 ~length:100 ~phys_base:0
       ~access:(Avt.read_write Avt.Any_initiator));
  match
    Avt.map avt ~net_base:150 ~length:100 ~phys_base:0
      ~access:(Avt.read_write Avt.Any_initiator)
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "overlapping map accepted"

let test_avt_32bit_bound () =
  let avt = Avt.create () in
  match
    Avt.map avt ~net_base:((1 lsl 32) - 10) ~length:100 ~phys_base:0
      ~access:(Avt.read_write Avt.Any_initiator)
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "window past 32-bit space accepted"

let test_avt_unmap_and_set_access () =
  let avt = Avt.create () in
  Test_util.check_result_ok "map"
    (Avt.map avt ~net_base:0 ~length:16 ~phys_base:0 ~access:(Avt.read_write (Avt.Initiators [])));
  check_bool "set_access" true (Avt.set_access avt ~net_base:0 (Avt.read_write Avt.Any_initiator));
  (match Avt.translate avt ~initiator:5 ~op:`Write ~addr:0 ~len:4 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "reprogrammed access not honored");
  check_bool "unmap" true (Avt.unmap avt ~net_base:0);
  check_bool "double unmap" false (Avt.unmap avt ~net_base:0)

(* --- Fabric --- *)

let make_fabric ?config sim =
  let fabric = Fabric.create sim ?config () in
  let host = Fabric.attach fabric ~name:"host" ~store:(Fabric.byte_store 4096) in
  let dev = Fabric.attach fabric ~name:"dev" ~store:(Fabric.byte_store 65536) in
  Test_util.check_result_ok "map dev window"
    (Avt.map (Fabric.avt dev) ~net_base:0 ~length:65536 ~phys_base:0
       ~access:(Avt.read_write Avt.Any_initiator));
  (fabric, host, dev)

let test_rdma_write_read_roundtrip () =
  Test_util.run_process (fun sim ->
      let fabric, host, dev = make_fabric sim in
      let data = Test_util.bytes_of_string "hello persistent world" in
      Test_util.check_result_ok "write"
        (Fabric.rdma_write fabric ~src:host ~dst:(Fabric.id dev) ~addr:0x100 ~data);
      match Fabric.rdma_read fabric ~src:host ~dst:(Fabric.id dev) ~addr:0x100
              ~len:(Bytes.length data)
      with
      | Ok back -> Alcotest.(check string) "payload" (Bytes.to_string data) (Bytes.to_string back)
      | Error _ -> Alcotest.fail "read failed")

let test_rdma_latency_model () =
  Test_util.run_process (fun sim ->
      let fabric, host, dev = make_fabric sim in
      let t0 = Sim.now sim in
      let data = Bytes.create 4096 in
      Test_util.check_result_ok "write"
        (Fabric.rdma_write fabric ~src:host ~dst:(Fabric.id dev) ~addr:0 ~data);
      let elapsed = Sim.now sim - t0 in
      let nominal = Fabric.transfer_time fabric ~bytes:4096 in
      check_int "matches nominal time" nominal elapsed;
      (* 4 KB at 125 MB/s plus 12 us latency: within [40, 60] us. *)
      check_bool "tens of microseconds" true (elapsed > Time.us 40 && elapsed < Time.us 60))

let test_rdma_access_enforced () =
  Test_util.run_process (fun sim ->
      let fabric = Fabric.create sim () in
      let host = Fabric.attach fabric ~name:"host" ~store:(Fabric.byte_store 64) in
      let intruder = Fabric.attach fabric ~name:"intruder" ~store:(Fabric.byte_store 64) in
      let dev = Fabric.attach fabric ~name:"dev" ~store:(Fabric.byte_store 4096) in
      Test_util.check_result_ok "map"
        (Avt.map (Fabric.avt dev) ~net_base:0 ~length:4096 ~phys_base:0
           ~access:(Avt.read_write (Avt.Initiators [ Fabric.id host ])));
      (match
         Fabric.rdma_write fabric ~src:intruder ~dst:(Fabric.id dev) ~addr:0
           ~data:(Bytes.create 8)
       with
      | Error (Fabric.Avt_error Avt.Access_denied) -> ()
      | _ -> Alcotest.fail "intruder write not rejected");
      match
        Fabric.rdma_write fabric ~src:host ~dst:(Fabric.id dev) ~addr:0 ~data:(Bytes.create 8)
      with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "authorized write rejected")

let test_rdma_dead_endpoint () =
  Test_util.run_process (fun sim ->
      let fabric, host, dev = make_fabric sim in
      Fabric.set_alive dev false;
      match Fabric.rdma_write fabric ~src:host ~dst:(Fabric.id dev) ~addr:0 ~data:(Bytes.create 8) with
      | Error Fabric.Unreachable -> ()
      | _ -> Alcotest.fail "write to dead endpoint succeeded")

let test_rail_failover () =
  Test_util.run_process (fun sim ->
      let fabric, host, dev = make_fabric sim in
      Fabric.set_rail fabric 0 false;
      (* Rail X down: traffic flows on Y. *)
      Test_util.check_result_ok "degraded write"
        (Fabric.rdma_write fabric ~src:host ~dst:(Fabric.id dev) ~addr:0 ~data:(Bytes.create 8));
      Fabric.set_rail fabric 1 false;
      match Fabric.rdma_write fabric ~src:host ~dst:(Fabric.id dev) ~addr:0 ~data:(Bytes.create 8) with
      | Error Fabric.No_path -> ()
      | _ -> Alcotest.fail "write with both rails down succeeded")

let test_nic_serialization () =
  (* Two writes from the same NIC must not overlap in time. *)
  Test_util.run_process (fun sim ->
      let fabric, host, dev = make_fabric sim in
      let one_transfer = Fabric.transfer_time fabric ~bytes:4096 in
      let done_at = ref Time.zero in
      let writer () =
        Test_util.check_result_ok "write"
          (Fabric.rdma_write fabric ~src:host ~dst:(Fabric.id dev) ~addr:0
             ~data:(Bytes.create 4096));
        done_at := max !done_at (Sim.now sim)
      in
      let g = Gate.create 2 in
      let spawn_writer () =
        ignore
          (Sim.spawn sim ~name:"w" (fun () ->
               writer ();
               Gate.arrive g))
      in
      spawn_writer ();
      spawn_writer ();
      Gate.await g;
      check_bool "serialized" true (!done_at >= 2 * one_transfer))

let test_crc_retries_slow_but_deliver () =
  Test_util.run_process (fun sim ->
      let config = { Fabric.default_config with crc_error_rate = 0.2 } in
      let fabric, host, dev = make_fabric ~config sim in
      let data = Bytes.create 8192 in
      let t0 = Sim.now sim in
      Test_util.check_result_ok "write with noise"
        (Fabric.rdma_write fabric ~src:host ~dst:(Fabric.id dev) ~addr:0 ~data);
      let noisy = Sim.now sim - t0 in
      let stats = Fabric.stats fabric in
      check_bool "some retries happened" true (stats.Fabric.packet_retries > 0);
      check_bool "slower than nominal" true (noisy > Fabric.transfer_time fabric ~bytes:8192))

let test_fabric_stats () =
  Test_util.run_process (fun sim ->
      let fabric, host, dev = make_fabric sim in
      Test_util.check_result_ok "write"
        (Fabric.rdma_write fabric ~src:host ~dst:(Fabric.id dev) ~addr:0 ~data:(Bytes.create 100));
      (match Fabric.rdma_read fabric ~src:host ~dst:(Fabric.id dev) ~addr:0 ~len:50 with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "read");
      let s = Fabric.stats fabric in
      check_int "writes" 1 s.Fabric.writes;
      check_int "reads" 1 s.Fabric.reads;
      check_int "bytes written" 100 s.Fabric.bytes_written;
      check_int "bytes read" 50 s.Fabric.bytes_read)

let prop_transfer_time_monotone =
  QCheck.Test.make ~name:"transfer time grows with size" ~count:50
    QCheck.(pair (int_bound 100000) (int_bound 100000))
    (fun (a, b) ->
      let sim = Sim.create () in
      let fabric = Fabric.create sim () in
      let small = min a b and large = max a b in
      Fabric.transfer_time fabric ~bytes:small <= Fabric.transfer_time fabric ~bytes:large)

let test_avt_epoch_fence () =
  let avt = Avt.create () in
  Test_util.check_result_ok "map"
    (Avt.map avt ~net_base:0 ~length:256 ~phys_base:0
       ~access:(Avt.read_write Avt.Any_initiator));
  check_int "epoch starts at zero" 0 (Avt.epoch avt);
  Avt.set_epoch avt 3;
  (* Epoch-less writes and reads are never fenced — only a descriptor
     that claims an older volume generation is. *)
  Test_util.check_result_ok "epoch-less write"
    (Avt.translate avt ~initiator:0 ~op:`Write ~addr:0 ~len:8);
  Test_util.check_result_ok "current-epoch write"
    (Avt.translate avt ~initiator:0 ~op:`Write ~epoch:3 ~addr:0 ~len:8);
  (match Avt.translate avt ~initiator:0 ~op:`Write ~epoch:2 ~addr:0 ~len:8 with
  | Error Avt.Stale_epoch -> ()
  | _ -> Alcotest.fail "stale-epoch write accepted");
  (match Avt.translate avt ~initiator:0 ~op:`Read ~epoch:2 ~addr:0 ~len:8 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "reads must not be fenced");
  check_int "fenced writes counted" 1 (Avt.fenced avt)

let test_avt_epoch_monotone () =
  let avt = Avt.create () in
  Avt.set_epoch avt 5;
  Avt.set_epoch avt 5;
  check_int "same epoch ok" 5 (Avt.epoch avt);
  match Avt.set_epoch avt 4 with
  | () -> Alcotest.fail "epoch decreased"
  | exception Invalid_argument _ -> ()

let suite =
  [
    ( "servernet.avt",
      [
        Alcotest.test_case "map and translate" `Quick test_avt_map_translate;
        Alcotest.test_case "unmapped address" `Quick test_avt_unmapped;
        Alcotest.test_case "per-initiator access control" `Quick test_avt_access_control;
        Alcotest.test_case "window crossing rejected" `Quick test_avt_window_crossing;
        Alcotest.test_case "overlapping windows rejected" `Quick test_avt_overlap_rejected;
        Alcotest.test_case "32-bit space enforced" `Quick test_avt_32bit_bound;
        Alcotest.test_case "unmap and set_access" `Quick test_avt_unmap_and_set_access;
        Alcotest.test_case "epoch fences stale writes" `Quick test_avt_epoch_fence;
        Alcotest.test_case "epoch is monotone" `Quick test_avt_epoch_monotone;
      ] );
    ( "servernet.fabric",
      [
        Alcotest.test_case "write/read roundtrip" `Quick test_rdma_write_read_roundtrip;
        Alcotest.test_case "latency in tens of microseconds" `Quick test_rdma_latency_model;
        Alcotest.test_case "AVT enforced on the wire" `Quick test_rdma_access_enforced;
        Alcotest.test_case "dead endpoint unreachable" `Quick test_rdma_dead_endpoint;
        Alcotest.test_case "rail failover then no-path" `Quick test_rail_failover;
        Alcotest.test_case "NIC serializes concurrent transfers" `Quick test_nic_serialization;
        Alcotest.test_case "CRC errors retry and slow down" `Quick test_crc_retries_slow_but_deliver;
        Alcotest.test_case "statistics counters" `Quick test_fabric_stats;
        QCheck_alcotest.to_alcotest prop_transfer_time_monotone;
      ] );
  ]
